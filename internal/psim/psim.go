// Package psim is a parallel discrete-event execution mode for the
// packetized-multicast simulator: hosts are partitioned across a fixed
// worker pool, each worker advances its partition's events through
// conservative time windows, and all shared-state effects — channel
// reservations, fault sampling, trace records, result counters — are
// resolved serially at window barriers in the exact order the serial
// engine would have produced them.
//
// The serial engine (package sim) stays the differential oracle: a psim
// run is byte-identical to sim.Concurrent at ANY worker count — same
// event order, same fault-RNG draw order, same traces, same stats. The
// construction that makes this possible:
//
//   - Lookahead. Every consequence of an injection intended at time τ
//     materializes at or after τ + t_ns + wire (the NI must spend t_ns
//     before the packet can even enter a channel, and the wire holds it
//     for wire time). So a window [T0, T0+δ) with δ = t_ns + wire can be
//     processed without seeing any event another partition creates inside
//     the same window: everything created by window events lands at or
//     beyond the window's end and is exchanged at the barrier.
//   - Order. The serial engine orders events by (time, seq) where seq is
//     assigned in creation order. psim replays seq exactly: workers record
//     the *intent* actions of their window in per-event creation order,
//     the barrier merges all workers' action streams by creator order
//     (creator event key, then action index) — which equals the serial
//     processing order — and assigns seq from a global counter as it
//     resolves each intent. Only host-local state (receive counts, NI
//     queues, buffer occupancy) is touched in parallel; it depends only on
//     the host's own event subsequence, which every schedule preserves.
//   - Conventional forwards. The one event kind a window can create
//     inside itself (host-level store-and-forward copies at τ + t_r +
//     i·t_s, which can undercut δ) is created by a deliver and creates
//     only intents. Such events carry their creator's key until the
//     barrier assigns their seq; the key comparator orders them exactly
//     where the serial engine would have popped them.
//
// Partitioning affects only which worker executes a host's events and how
// much cross-partition mail the barrier routes — never the results.
package psim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stepsim"
	"repro/internal/topology"
	"repro/internal/tree"
)

// Config controls the parallel execution mode.
type Config struct {
	// Workers is the worker-pool size; values < 1 mean 1. Results are
	// identical at every worker count.
	Workers int
	// Parts optionally assigns each host to a worker (len = NumHosts,
	// values in [0, Workers)). Nil means topology.Partition: contiguous
	// slabs on grids, hashing on irregular networks. Empty partitions are
	// allowed.
	Parts []int
	// Window optionally shortens the conservative window (microseconds).
	// The effective window is min(Window, lookahead) when Window > 0;
	// tiny values degrade to one-timestamp windows. Results do not depend
	// on the window length.
	Window float64
	// Routes optionally supplies precomputed routes keyed by {parent,
	// child}; missing entries fall back to the router. Precomputing lets
	// benchmarks price the event engine rather than route construction.
	Routes map[[2]int]routing.Route
	// Stats, when non-nil, receives window/synchronization counters.
	Stats *WindowStats
}

// WindowStats reports how a parallel run synchronized.
type WindowStats struct {
	Workers   int           // effective worker count
	Lookahead float64       // effective window length (us)
	Windows   int           // conservative windows executed
	Events    int           // events processed across all workers
	Mailed    int           // deliveries that crossed a partition boundary
	PerWindow stats.Summary // events per window
}

// Concurrent is the parallel counterpart of sim.Concurrent: identical
// results, computed by cfg.Workers workers.
func Concurrent(router routing.Router, sessions []sim.Session, p sim.Params, disc stepsim.Discipline, cfg Config) *sim.ConcurrentResult {
	res, _ := run(router, sessions, p, disc, false, nil, cfg)
	return res
}

// ConcurrentTraced is the parallel counterpart of sim.ConcurrentTraced;
// the trace is byte-identical to the serial engine's.
func ConcurrentTraced(router routing.Router, sessions []sim.Session, p sim.Params, disc stepsim.Discipline, traced bool, cfg Config) (*sim.ConcurrentResult, []sim.TraceEvent) {
	return run(router, sessions, p, disc, traced, nil, cfg)
}

// ConcurrentFaulty is the parallel counterpart of sim.ConcurrentFaulty.
// Fault decisions are sampled at the barriers in serial event order, so
// the fault-RNG draw sequence — and therefore every loss, stall and
// dead-link outcome — matches the serial engine's exactly.
func ConcurrentFaulty(router routing.Router, sessions []sim.Session, p sim.Params, disc stepsim.Discipline, plan sim.FaultPlan, cfg Config) (*sim.ConcurrentResult, error) {
	fs, err := plan.Arm()
	if err != nil {
		return nil, err
	}
	res, _ := run(router, sessions, p, disc, false, fs, cfg)
	return res, nil
}

// sessTab is one session's state in dense SoA form. Slots index the
// session's tree nodes; per-slot fields are written only by the worker
// owning the slot's host, so the table is shared without locks.
type sessTab struct {
	tr    *tree.Tree
	m     int
	start float64
	nodes []int32 // tree nodes in Tree.Nodes() order; slot = position
	slot  []int32 // host -> slot+1 (0 = host not in session); len numHosts

	recv      []int32   // slot -> packets received
	parent    []int32   // slot -> parent host (-1 at root)
	deg       []int32   // slot -> child count
	childBase []int32   // slot -> first index into edges
	copies    []int32   // slot*m + pkt -> forwarding copies still to send
	niDone    []float64 // slot -> NI completion time (-1 = not complete)
	hostDone  []float64 // slot -> host completion time

	edges []edgeTo // flattened child edges, grouped by slot
}

// edgeTo is one tree edge with its precomputed route.
type edgeTo struct {
	child int32
	route routing.Route
}

// qop is one pending injection in a host's NI queue.
type qop struct {
	sess   int32
	edge   int32
	packet int32
}

// hostQueue is an NI send queue consumed by head index.
type hostQueue struct {
	ops  []qop
	head int
}

// engine is one parallel run plus its recyclable carcass.
type engine struct {
	p      sim.Params
	disc   stepsim.Discipline
	router routing.Router
	wire   float64
	ports  int
	window float64
	wEnd   float64
	traced bool
	faults *sim.FaultState
	specs  []sim.Session

	numHosts int
	owner    []int32
	tabs     []*sessTab
	nTabs    int

	// per-host NI state, indexed by host id; written only by the owner
	// worker, reset lazily by epoch stamp.
	inFlight  []int32
	buffered  []int32
	maxBuf    []int32
	queues    []hostQueue
	hostEpoch []uint64
	epoch     uint64
	involved  []int32

	chanFree  []float64
	routes    map[[2]int]routing.Route // private cache (keyed to router identity)
	cfgRoutes map[[2]int]routing.Route
	ctr       uint64 // replica of the serial engine's seq counter

	workers []worker
	heads   []int // barrier merge cursors

	res     *sim.ConcurrentResult
	trace   *[]sim.TraceEvent
	wstats  *WindowStats
	crossed int
}

var enginePool = sync.Pool{New: func() any {
	return &engine{routes: make(map[[2]int]routing.Route)}
}}

func run(router routing.Router, sessions []sim.Session, p sim.Params, disc stepsim.Discipline, traced bool, faults *sim.FaultState, cfg Config) (*sim.ConcurrentResult, []sim.TraceEvent) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if len(sessions) == 0 {
		panic("psim: no sessions")
	}
	e := enginePool.Get().(*engine)
	defer func() {
		e.specs, e.faults, e.res, e.trace, e.wstats = nil, nil, nil, nil, nil
		enginePool.Put(e)
	}()
	e.setup(router, sessions, p, disc, traced, faults, cfg)
	var events []sim.TraceEvent
	if traced {
		e.trace = &events
	}
	e.loop(cfg)
	e.finish()
	return e.res, events
}

// setup builds the run state: partition, session tables, initial events.
func (e *engine) setup(router routing.Router, sessions []sim.Session, p sim.Params, disc stepsim.Discipline, traced bool, faults *sim.FaultState, cfg Config) {
	net := router.Network()
	e.p, e.disc, e.traced, e.faults = p, disc, traced, faults
	e.specs = sessions
	e.wire = p.WireTime()
	e.ports = p.Ports()
	e.numHosts = net.NumHosts()
	e.ctr = uint64(len(sessions))
	e.crossed = 0
	e.wstats = cfg.Stats
	e.cfgRoutes = cfg.Routes
	if e.router != router {
		e.router = router
		clear(e.routes)
	}

	// Lookahead: min over everything an intent at τ can cause. The
	// earliest is the sender-side completion at start+wire with start >=
	// τ + t_ns (plus any stall), so δ = t_ns + wire. Params.Validate
	// guarantees t_ns > 0 and wire > 0, hence δ > 0.
	e.window = p.TNISend + e.wire
	if cfg.Window > 0 && cfg.Window < e.window {
		e.window = cfg.Window
	}

	nw := cfg.Workers
	if nw < 1 {
		nw = 1
	}
	if cap(e.workers) < nw {
		e.workers = make([]worker, nw)
	} else {
		e.workers = e.workers[:nw]
	}
	for i := range e.workers {
		w := &e.workers[i]
		w.heap = w.heap[:0]
		w.inbox = w.inbox[:0]
		w.actions = w.actions[:0]
	}
	if cap(e.heads) < nw {
		e.heads = make([]int, nw)
	} else {
		e.heads = e.heads[:nw]
	}

	if cfg.Parts != nil {
		if len(cfg.Parts) != e.numHosts {
			panic(fmt.Sprintf("psim: %d partition entries for %d hosts", len(cfg.Parts), e.numHosts))
		}
		if cap(e.owner) < e.numHosts {
			e.owner = make([]int32, e.numHosts)
		} else {
			e.owner = e.owner[:e.numHosts]
		}
		for h, part := range cfg.Parts {
			if part < 0 || part >= nw {
				panic(fmt.Sprintf("psim: host %d assigned to worker %d of %d", h, part, nw))
			}
			e.owner[h] = int32(part)
		}
	} else {
		parts := topology.Partition(net, nw)
		if cap(e.owner) < e.numHosts {
			e.owner = make([]int32, e.numHosts)
		} else {
			e.owner = e.owner[:e.numHosts]
		}
		for h, part := range parts {
			e.owner[h] = int32(part)
		}
	}

	if cap(e.chanFree) < net.NumChannels() {
		e.chanFree = make([]float64, net.NumChannels())
	} else {
		e.chanFree = e.chanFree[:net.NumChannels()]
		for i := range e.chanFree {
			e.chanFree[i] = 0
		}
	}

	grow := func(n int) {
		if cap(e.inFlight) < n {
			e.inFlight = make([]int32, n)
			e.buffered = make([]int32, n)
			e.maxBuf = make([]int32, n)
			e.queues = make([]hostQueue, n)
			e.hostEpoch = make([]uint64, n)
		} else {
			e.inFlight = e.inFlight[:n]
			e.buffered = e.buffered[:n]
			e.maxBuf = e.maxBuf[:n]
			e.queues = e.queues[:n]
			e.hostEpoch = e.hostEpoch[:n]
		}
	}
	grow(e.numHosts)
	e.epoch++
	e.involved = e.involved[:0]

	if cap(e.tabs) < len(sessions) {
		tabs := make([]*sessTab, len(sessions))
		copy(tabs, e.tabs[:e.nTabs])
		e.tabs = tabs
	} else {
		e.tabs = e.tabs[:len(sessions)]
	}
	if e.nTabs > len(e.tabs) {
		e.nTabs = len(e.tabs)
	}

	for si, sess := range sessions {
		if sess.Packets < 1 {
			panic(fmt.Sprintf("psim: session %d has %d packets", si, sess.Packets))
		}
		if sess.Start < 0 {
			panic(fmt.Sprintf("psim: session %d starts at %f", si, sess.Start))
		}
		tab := e.tabs[si]
		if tab == nil {
			tab = &sessTab{}
			e.tabs[si] = tab
			if si >= e.nTabs {
				e.nTabs = si + 1
			}
		}
		e.fillTab(tab, sess)
	}

	// Initial events: one start per session, with the exact seq numbers
	// 1..S the serial engine hands its start callbacks.
	for si, sess := range sessions {
		root := sess.Tree.Root()
		e.mail(pevent{
			at:   sess.Start + p.THostSend,
			ord:  uint64(si + 1),
			kind: evStart,
			sess: int32(si),
			host: int32(root),
		})
	}

	e.res = &sim.ConcurrentResult{
		Sessions:    make([]sim.SessionResult, len(sessions)),
		MaxBuffered: map[int]int{},
	}
}

// fillTab populates one session table, reusing the previous run's
// storage. The slot index is cleared via the previous node list, so reset
// cost scales with session size, not host count.
func (e *engine) fillTab(tab *sessTab, sess sim.Session) {
	for _, v := range tab.nodes {
		if int(v) < len(tab.slot) {
			tab.slot[v] = 0
		}
	}
	if cap(tab.slot) < e.numHosts {
		tab.slot = make([]int32, e.numHosts)
	} else {
		tab.slot = tab.slot[:e.numHosts]
	}

	nodes := sess.Tree.Nodes()
	n := len(nodes)
	m := sess.Packets
	tab.tr, tab.m, tab.start = sess.Tree, m, sess.Start
	tab.nodes = resizeI32(tab.nodes, n)
	tab.recv = resizeI32(tab.recv, n)
	tab.parent = resizeI32(tab.parent, n)
	tab.deg = resizeI32(tab.deg, n)
	tab.childBase = resizeI32(tab.childBase, n)
	tab.copies = resizeI32(tab.copies, n*m)
	tab.niDone = resizeF64(tab.niDone, n)
	tab.hostDone = resizeF64(tab.hostDone, n)
	tab.edges = tab.edges[:0]

	for slot, v := range nodes {
		tab.nodes[slot] = int32(v)
		tab.slot[v] = int32(slot + 1)
		tab.recv[slot] = 0
		tab.niDone[slot] = -1
		tab.hostDone[slot] = -1
		if parent, ok := sess.Tree.Parent(v); ok {
			tab.parent[slot] = int32(parent)
		} else {
			tab.parent[slot] = -1
		}
		children := sess.Tree.Children(v)
		tab.deg[slot] = int32(len(children))
		tab.childBase[slot] = int32(len(tab.edges))
		for _, c := range children {
			tab.edges = append(tab.edges, edgeTo{child: int32(c), route: e.route(v, c)})
		}
		e.touch(int32(v))
	}
}

// route resolves parent->child, preferring the caller-provided table,
// then the engine's router-keyed cache, then the router itself.
func (e *engine) route(v, c int) routing.Route {
	key := [2]int{v, c}
	if e.cfgRoutes != nil {
		if r, ok := e.cfgRoutes[key]; ok {
			return r
		}
	}
	if r, ok := e.routes[key]; ok {
		return r
	}
	r := e.router.Route(v, c)
	e.routes[key] = r
	return r
}

// touch resets host h's NI state on first use this run.
func (e *engine) touch(h int32) {
	if e.hostEpoch[h] != e.epoch {
		e.hostEpoch[h] = e.epoch
		e.involved = append(e.involved, h)
		e.inFlight[h], e.buffered[h], e.maxBuf[h] = 0, 0, 0
		q := &e.queues[h]
		q.ops, q.head = q.ops[:0], 0
	}
}

// mail routes an event to its host's worker inbox.
func (e *engine) mail(ev pevent) {
	w := &e.workers[e.owner[ev.host]]
	w.inbox = append(w.inbox, ev)
}

// loop drives conservative windows until no events remain.
func (e *engine) loop(cfg Config) {
	nw := len(e.workers)
	var pool *workerPool
	if nw > 1 {
		pool = startPool(e)
		defer pool.stop()
	}
	windows, totalEvents := 0, 0
	var perWindow stats.Summary
	for {
		// Phase A (parallel): drain inboxes into heaps, report minima.
		if pool != nil {
			pool.broadcast(phaseDrain)
		} else {
			e.workers[0].drain()
		}
		t0 := math.Inf(1)
		for i := range e.workers {
			if e.workers[i].localMin < t0 {
				t0 = e.workers[i].localMin
			}
		}
		if math.IsInf(t0, 1) {
			break
		}
		wEnd := t0 + e.window
		if !(wEnd > t0) {
			// Zero-lookahead degradation (tiny Window override, or t0 so
			// large the window underflows the float grid): process exactly
			// the events at t0.
			wEnd = math.Nextafter(t0, math.Inf(1))
		}
		e.wEnd = wEnd
		// Phase B (parallel): each worker runs its partition's window.
		if pool != nil {
			pool.broadcast(phaseWindow)
		} else {
			e.runWindow(&e.workers[0])
		}
		// Barrier (serial): merge action streams in serial order, resolve
		// intents, distribute the created events.
		e.barrier()
		windows++
		n := 0
		for i := range e.workers {
			n += e.workers[i].processed
		}
		totalEvents += n
		perWindow.Add(float64(n))
	}
	if e.wstats != nil {
		*e.wstats = WindowStats{
			Workers:   nw,
			Lookahead: e.window,
			Windows:   windows,
			Events:    totalEvents,
			Mailed:    e.crossed,
			PerWindow: perWindow,
		}
	}
}

// finish assembles the ConcurrentResult exactly as the serial engine does.
func (e *engine) finish() {
	for si, tab := range e.tabs[:len(e.specs)] {
		sr := &e.res.Sessions[si]
		sr.NIDone = make(map[int]float64, len(tab.nodes)-1)
		sr.HostDone = make(map[int]float64, len(tab.nodes)-1)
		for slot, v := range tab.nodes {
			if tab.niDone[slot] >= 0 {
				sr.NIDone[int(v)] = tab.niDone[slot]
				sr.HostDone[int(v)] = tab.hostDone[slot]
			}
		}
		for slot, v := range tab.nodes {
			if got := int(tab.recv[slot]); got != tab.m {
				if e.faults == nil {
					panic(fmt.Sprintf("psim: session %d node %d received %d of %d packets",
						si, v, got, tab.m))
				}
				if e.res.Incomplete == nil {
					e.res.Incomplete = make([]map[int]int, len(e.specs))
				}
				if e.res.Incomplete[si] == nil {
					e.res.Incomplete[si] = map[int]int{}
				}
				e.res.Incomplete[si][int(v)] = tab.m - got
			}
		}
		last := 0.0
		for _, t := range sr.HostDone {
			last = math.Max(last, t)
		}
		if last > 0 {
			sr.Latency = last - tab.start
		}
		e.res.Makespan = math.Max(e.res.Makespan, last)
	}
	if e.faults != nil {
		e.res.Faults = e.faults.Stats
	}
	for _, v := range e.involved {
		forwarder := false
		for _, tab := range e.tabs[:len(e.specs)] {
			if s := tab.slot[v]; s > 0 && tab.deg[s-1] > 0 {
				forwarder = true
			}
		}
		if forwarder {
			e.res.MaxBuffered[int(v)] = int(e.maxBuf[v])
		}
	}
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
