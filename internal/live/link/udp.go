package link

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Network provisions live-runtime transports over a real fabric instead
// of in-process channels: the runtime Attaches every participating
// host's inbox before starting, Dials a Transport per tree edge, and
// Detaches each host at teardown. *UDPNetwork is the socket
// implementation; anything satisfying this seam (a future TCP or RDMA
// backend) slots into live.Config.Network unchanged.
type Network interface {
	// Attach registers host's inbox so dialed transports can deliver to
	// it; the implementation starts whatever receive machinery the host
	// needs. A host must be attached before edges from it are dialed
	// (senders need the return path for flow control).
	Attach(host int, in *Inbox) error
	// Dial opens one directed edge incarnation from an attached host to a
	// known peer. The returned Transport honors the interface contract:
	// Send blocks under backpressure and returns ErrAborted once the
	// abort channel closes or the from-host detaches.
	Dial(from, to int) (Transport, error)
	// Detach stops host's receive machinery and retires every transport
	// dialed from it; blocked Sends return ErrAborted. Idempotent.
	Detach(host int)
}

// UDPConfig tunes a UDPNetwork.
type UDPConfig struct {
	// Session is the run nonce stamped into every datagram; endpoints
	// drop datagrams of any other session, so two fabrics sharing ports
	// (or a stale process) cannot cross-talk.
	Session uint64
	// MTU bounds the datagram size (header + payload). Wire packets
	// larger than MTU-34 are fragmented. Zero selects DefaultUDPMTU.
	MTU int
	// Window is the per-edge credit window in fragments: a sender blocks
	// once Window fragments are unacknowledged by flow-control credits —
	// the datagram form of the in-process gate's backpressure. Zero
	// selects DefaultUDPWindow.
	Window int
}

const (
	// DefaultUDPMTU keeps datagrams under the classic 1280-byte IPv6
	// minimum-MTU budget with room for IP/UDP headers.
	DefaultUDPMTU = 1200
	// DefaultUDPWindow is the per-edge in-flight fragment bound.
	DefaultUDPWindow = 16

	// udpPoll is the pump's read-deadline granularity: how quickly a
	// Detach is observed by a pump with no inbound traffic.
	udpPoll = 50 * time.Millisecond
	// udpProbeEvery is how long a sender stays credit-blocked before it
	// probes the receiver — self-healing when a credit datagram is lost.
	udpProbeEvery = 10 * time.Millisecond
	// udpCtlBacklog sizes each endpoint's control-datagram channel.
	udpCtlBacklog = 64
)

// withDefaults normalizes the zero values.
func (c UDPConfig) withDefaults() (UDPConfig, error) {
	if c.MTU == 0 {
		c.MTU = DefaultUDPMTU
	}
	if c.Window == 0 {
		c.Window = DefaultUDPWindow
	}
	if c.MTU < dgHeaderSize+16 || c.MTU > maxDatagram {
		return c, fmt.Errorf("link: UDP MTU %d outside [%d, %d]", c.MTU, dgHeaderSize+16, maxDatagram)
	}
	if c.Window < 1 {
		return c, fmt.Errorf("link: UDP window %d must be >= 1", c.Window)
	}
	return c, nil
}

// UDPStats is a snapshot of a network's drop counters. All drops are
// legal under UDP semantics — the reliable layer retransmits above — but
// nonzero counts on a loopback fabric localize a bug.
type UDPStats struct {
	// BadDatagrams counts undecodable datagrams (truncation, corruption,
	// version mismatch).
	BadDatagrams uint64
	// Foreign counts well-formed datagrams for another session or host.
	Foreign uint64
	// Resyncs counts fragment-sequence breaks that discarded a partial
	// wire packet (datagram loss or reordering mid-packet).
	Resyncs uint64
	// Overflow counts completed wire packets dropped because an
	// incarnation's delivery queue was full (cannot happen while senders
	// respect the credit window).
	Overflow uint64
	// CtlDropped counts control datagrams dropped on a full ctl channel.
	CtlDropped uint64
}

// UDPNetwork moves live-runtime frames over real UDP sockets: one socket
// per hosted NI, explicit datagram framing (udpframe.go), MTU-bounded
// fragmentation, and credit-based per-edge flow control that turns the
// receiver's bounded inbox into sender-side blocking backpressure — the
// Transport contract, over a wire that can actually drop.
//
// Topology is explicit: Listen binds a socket for each locally hosted
// NI, AddPeer registers the address of every remote one (a daemon knows
// both from its peer map; NewLoopbackUDP does it all in-process). The
// zero-config differential path is NewLoopbackUDP + live.Config.Network.
//
// Delivery semantics: plain live.Run above this network assumes the
// loopback guarantees (no loss, per-socket-pair ordering); on a real
// network use live.RunReliable, whose retransmission plane was built for
// exactly this wire. A network may be reused across runs only when the
// previous run completed cleanly — an aborted run can leave datagrams in
// kernel buffers that the next Attach would deliver.
type UDPNetwork struct {
	cfg UDPConfig

	mu     sync.Mutex
	eps    map[int]*udpEndpoint
	peers  map[int]*net.UDPAddr
	closed bool

	nextInc atomic.Uint32

	bad, foreign, resync, overflow, ctlDropped atomic.Uint64
}

// NewUDPNetwork creates an empty network; add endpoints with Listen and
// remote addresses with AddPeer.
func NewUDPNetwork(cfg UDPConfig) (*UDPNetwork, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &UDPNetwork{
		cfg:   cfg,
		eps:   map[int]*udpEndpoint{},
		peers: map[int]*net.UDPAddr{},
	}, nil
}

// NewLoopbackUDP builds the single-process fabric: one 127.0.0.1 socket
// per host, every host a peer of every other. It is the network behind
// the net-matches-live differential arm and `mcastd -all`.
func NewLoopbackUDP(hosts []int, cfg UDPConfig) (*UDPNetwork, error) {
	n, err := NewUDPNetwork(cfg)
	if err != nil {
		return nil, err
	}
	for _, h := range hosts {
		if _, err := n.Listen(h, "127.0.0.1:0"); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// Listen binds a UDP socket for host (addr "" means 127.0.0.1:0) and
// registers the bound address as host's peer entry. Each host binds at
// most once.
func (n *UDPNetwork) Listen(host int, addr string) (*net.UDPAddr, error) {
	if host < 0 || host > 0xFFFF {
		return nil, fmt.Errorf("link: host %d outside the datagram header's range", host)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("link: host %d: %w", host, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("link: host %d: %w", host, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		conn.Close()
		return nil, fmt.Errorf("link: network closed")
	}
	if _, dup := n.eps[host]; dup {
		conn.Close()
		return nil, fmt.Errorf("link: host %d already listening", host)
	}
	ep := &udpEndpoint{
		n:     n,
		host:  host,
		conn:  conn,
		edges: map[uint32]*UDPTransport{},
		ctl:   make(chan []byte, udpCtlBacklog),
	}
	n.eps[host] = ep
	bound := conn.LocalAddr().(*net.UDPAddr)
	n.peers[host] = bound
	return bound, nil
}

// AddPeer registers the address of a host served by another process.
func (n *UDPNetwork) AddPeer(host int, addr string) error {
	if host < 0 || host > 0xFFFF {
		return fmt.Errorf("link: host %d outside the datagram header's range", host)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("link: peer %d: %w", host, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[host] = ua
	return nil
}

// Addr returns the registered address of a host (nil if unknown).
func (n *UDPNetwork) Addr(host int) *net.UDPAddr {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[host]
}

// Local reports whether host is served by a socket of this network.
func (n *UDPNetwork) Local(host int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eps[host] != nil
}

// Stats snapshots the drop counters.
func (n *UDPNetwork) Stats() UDPStats {
	return UDPStats{
		BadDatagrams: n.bad.Load(),
		Foreign:      n.foreign.Load(),
		Resyncs:      n.resync.Load(),
		Overflow:     n.overflow.Load(),
		CtlDropped:   n.ctlDropped.Load(),
	}
}

var _ Network = (*UDPNetwork)(nil)

// Attach starts host's receive pump delivering into the inbox.
func (n *UDPNetwork) Attach(host int, in *Inbox) error {
	if in == nil {
		return fmt.Errorf("link: host %d: nil inbox", host)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("link: network closed")
	}
	ep := n.eps[host]
	if ep == nil {
		return fmt.Errorf("link: host %d is not listening on this network", host)
	}
	return ep.attach(in)
}

// Detach stops host's pump, discards its in-flight receive state and
// retires every transport dialed from it. Safe to call on hosts that
// were never attached.
func (n *UDPNetwork) Detach(host int) {
	n.mu.Lock()
	ep := n.eps[host]
	n.mu.Unlock()
	if ep != nil {
		ep.detach()
	}
}

// Dial opens a directed edge from an attached local host to any host
// with a registered address, minting a fresh incarnation ID.
func (n *UDPNetwork) Dial(from, to int) (Transport, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("link: network closed")
	}
	ep := n.eps[from]
	peer := n.peers[to]
	n.mu.Unlock()
	if ep == nil {
		return nil, fmt.Errorf("link: dial %d->%d: host %d is not listening here", from, to, from)
	}
	if peer == nil {
		return nil, fmt.Errorf("link: dial %d->%d: no address for peer %d", from, to, to)
	}
	return ep.dial(to, peer, n.nextInc.Add(1))
}

// Ctl returns host's control-datagram channel (daemon coordination
// traffic sent with SendCtl). Nil when the host is not local.
func (n *UDPNetwork) Ctl(host int) <-chan []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep := n.eps[host]; ep != nil {
		return ep.ctl
	}
	return nil
}

// SendCtl sends one out-of-band control payload from a local host to any
// registered peer. Control datagrams bypass flow control (they are small
// and idempotent by protocol design); delivery is best-effort like any
// datagram, so senders repeat until acknowledged at their own layer.
func (n *UDPNetwork) SendCtl(from, to int, payload []byte) error {
	if len(payload) > n.cfg.MTU-dgHeaderSize {
		return fmt.Errorf("link: ctl payload %d exceeds MTU budget %d", len(payload), n.cfg.MTU-dgHeaderSize)
	}
	n.mu.Lock()
	ep := n.eps[from]
	peer := n.peers[to]
	n.mu.Unlock()
	if ep == nil {
		return fmt.Errorf("link: ctl %d->%d: host %d is not listening here", from, to, from)
	}
	if peer == nil {
		return fmt.Errorf("link: ctl %d->%d: no address for peer %d", from, to, to)
	}
	dg := appendDatagram(make([]byte, 0, dgHeaderSize+len(payload)), dgHeader{
		Kind: dgCtl, From: uint16(from), To: uint16(to),
		Session: n.cfg.Session, Frags: 1,
	}, payload)
	_, err := ep.conn.WriteToUDP(dg, peer)
	return err
}

// Close detaches every host and closes every socket. The network cannot
// be reused afterwards.
func (n *UDPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*udpEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	var first error
	for _, ep := range eps {
		ep.detach()
		if err := ep.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// udpEndpoint is one hosted NI's socket plus its receive machinery. The
// pump goroutine (one per attach session) owns the per-incarnation
// receive state; it never blocks — completed wire packets go to a
// bounded per-incarnation queue drained by a deliverer goroutine, which
// is the only place inbox backpressure is absorbed. That split is what
// keeps the fabric deadlock-free: credits for this host's *outgoing*
// edges are processed by the pump even while delivery into this host's
// inbox is stalled.
type udpEndpoint struct {
	n    *UDPNetwork
	host int
	conn *net.UDPConn
	ctl  chan []byte

	mu       sync.Mutex
	attached bool
	inbox    *Inbox
	stop     chan struct{} // closed by detach; aborts pump, deliverers, dialed senders
	pumpDone chan struct{}
	delivers sync.WaitGroup
	edges    map[uint32]*UDPTransport // local outgoing incarnations, by ID
}

func (ep *udpEndpoint) attach(in *Inbox) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.attached {
		return fmt.Errorf("link: host %d already attached", ep.host)
	}
	ep.attached = true
	ep.inbox = in
	ep.stop = make(chan struct{})
	ep.pumpDone = make(chan struct{})
	go ep.pump(in, ep.stop, ep.pumpDone)
	return nil
}

func (ep *udpEndpoint) detach() {
	ep.mu.Lock()
	if !ep.attached {
		ep.mu.Unlock()
		return
	}
	ep.attached = false
	stop, done := ep.stop, ep.pumpDone
	ep.edges = map[uint32]*UDPTransport{}
	ep.mu.Unlock()
	close(stop)
	// Expire the pump's in-flight read immediately instead of letting it
	// run out its udpPoll deadline — detaching a whole fabric host by
	// host would otherwise cost up to 50ms per host.
	ep.conn.SetReadDeadline(time.Now())
	<-done
	ep.delivers.Wait()
}

func (ep *udpEndpoint) dial(to int, peer *net.UDPAddr, inc uint32) (*UDPTransport, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.attached {
		return nil, fmt.Errorf("link: dial %d->%d: host %d is not attached (no credit return path)",
			ep.host, to, ep.host)
	}
	t := &UDPTransport{
		ep:     ep,
		from:   ep.host,
		to:     to,
		peer:   peer,
		inc:    inc,
		window: uint32(ep.n.cfg.Window),
		chunk:  ep.n.cfg.MTU - dgHeaderSize,
		stop:   ep.stop,
		notify: make(chan struct{}, 1),
	}
	ep.edges[inc] = t
	return t, nil
}

// rcvKey identifies one inbound edge incarnation. The sending host is
// part of the key because incarnation IDs are only unique within the
// minting process — daemons on one fabric each run their own counter.
type rcvKey struct {
	from int
	inc  uint32
}

// rcvState is the receive side of one inbound edge incarnation.
// Fragment reassembly fields are pump-owned; consumed is shared with the
// deliverer (both credit cumulatively, the sender keeps the max).
type rcvState struct {
	from     int
	inc      uint32
	addr     *net.UDPAddr
	nextSeq  uint32   // next absolute fragment sequence expected
	expect   uint16   // next fragment index of the packet being reassembled
	parts    [][]byte // fragments held so far
	held     int      // payload bytes in parts
	q        chan []byte
	consumed atomic.Uint32
}

// pump is the endpoint's socket-reader loop for one attach session. It
// polls with a short read deadline so detach needs no socket close (the
// endpoint survives for the next run), validates and dispatches every
// datagram, and never blocks: that is the deadlock-freedom invariant.
func (ep *udpEndpoint) pump(in *Inbox, stop chan struct{}, done chan struct{}) {
	defer close(done)
	n := ep.n
	rcv := map[rcvKey]*rcvState{}
	buf := make([]byte, maxDatagram)
	credit := make([]byte, 0, dgHeaderSize)
	for {
		select {
		case <-stop:
			return
		default:
		}
		ep.conn.SetReadDeadline(time.Now().Add(udpPoll))
		nb, raddr, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return // socket closed under us: network shutdown
		}
		h, payload, err := decodeDatagram(buf[:nb])
		if err != nil {
			n.bad.Add(1)
			continue
		}
		if h.Session != n.cfg.Session || int(h.To) != ep.host {
			n.foreign.Add(1)
			continue
		}
		switch h.Kind {
		case dgData:
			key := rcvKey{from: int(h.From), inc: h.Epoch}
			rs, ok := rcv[key]
			if !ok {
				rs = &rcvState{
					from: key.from,
					inc:  key.inc,
					addr: raddr,
					// A queue of Window packets can never overflow: every
					// queued packet's final fragment is uncredited until
					// delivery, so the sender's window caps the backlog.
					q: make(chan []byte, n.cfg.Window),
				}
				rcv[key] = rs
				ep.delivers.Add(1)
				go ep.deliver(rs, in, stop)
			}
			// Credit accounting is by absolute fragment sequence: every
			// fragment the sender ever numbered must end up accounted —
			// credited on arrival (non-final), after delivery (final), or
			// right here when the wire lost it — or the sender's window
			// would shrink by one forever per lost datagram.
			if h.Seq < rs.nextSeq {
				n.resync.Add(1) // duplicate or reordered stale fragment
				continue
			}
			if h.Seq > rs.nextSeq {
				// Gap: fragments [nextSeq, h.Seq) are lost. Account them,
				// drop the broken partial packet (its fragments were
				// credited on arrival), and resume at the new sequence.
				n.resync.Add(1)
				rs.consumed.Add(h.Seq - rs.nextSeq)
				rs.nextSeq = h.Seq
				rs.parts, rs.held, rs.expect = nil, 0, 0
				ep.sendCredit(credit, rs)
			}
			rs.nextSeq++
			if h.Frag != rs.expect {
				// In-sequence arrival that does not continue the partial
				// packet (a headless tail after loss). Unrecoverable:
				// account it and move on.
				n.resync.Add(1)
				rs.parts, rs.held, rs.expect = nil, 0, 0
				if h.Frag != 0 {
					rs.consumed.Add(1)
					ep.sendCredit(credit, rs)
					continue
				}
			}
			chunk := make([]byte, len(payload))
			copy(chunk, payload)
			rs.parts = append(rs.parts, chunk)
			rs.held += len(chunk)
			rs.expect++
			if h.Frag+1 < h.Frags {
				rs.consumed.Add(1)
				ep.sendCredit(credit, rs)
				continue
			}
			pkt := chunk
			if len(rs.parts) > 1 {
				pkt = make([]byte, 0, rs.held)
				for _, p := range rs.parts {
					pkt = append(pkt, p...)
				}
			}
			rs.parts, rs.held, rs.expect = nil, 0, 0
			select {
			case rs.q <- pkt:
				// The final fragment is credited by the deliverer once the
				// packet clears the inbox gate — that deferral is what turns
				// inbox fullness into sender-side blocking.
			default:
				n.overflow.Add(1)
				rs.consumed.Add(1)
				ep.sendCredit(credit, rs)
			}
		case dgCredit:
			ep.mu.Lock()
			t := ep.edges[h.Epoch]
			ep.mu.Unlock()
			if t != nil && t.to == int(h.From) {
				t.credit(h.Seq)
			}
		case dgProbe:
			// A blocked sender lost a credit; answer with the cumulative
			// count (credits supersede, so replies are idempotent). An
			// unknown incarnation has consumed nothing.
			rs := rcv[rcvKey{from: int(h.From), inc: h.Epoch}]
			if rs == nil {
				rs = &rcvState{from: int(h.From), inc: h.Epoch, addr: raddr}
			}
			ep.sendCredit(credit, rs)
		case dgCtl:
			msg := make([]byte, len(payload))
			copy(msg, payload)
			select {
			case ep.ctl <- msg:
			default:
				n.ctlDropped.Add(1)
			}
		}
	}
}

// deliver drains one incarnation's completed-packet queue into the inbox
// through a plain in-process Link — reusing its gate/latency semantics —
// and credits the final fragment of each packet once admitted.
func (ep *udpEndpoint) deliver(rs *rcvState, in *Inbox, stop chan struct{}) {
	defer ep.delivers.Done()
	fwd := New(rs.from, in, 0)
	credit := make([]byte, 0, dgHeaderSize)
	for {
		select {
		case pkt := <-rs.q:
			if fwd.Send(pkt, stop) != nil {
				return // detached mid-delivery
			}
			rs.consumed.Add(1)
			ep.sendCredit(credit, rs)
		case <-stop:
			return
		}
	}
}

// sendCredit emits one cumulative credit datagram to rs's sender. buf is
// the caller's scratch encoding buffer (pump and deliverer each own one).
func (ep *udpEndpoint) sendCredit(buf []byte, rs *rcvState) {
	dg := appendDatagram(buf[:0], dgHeader{
		Kind: dgCredit, From: uint16(ep.host), To: uint16(rs.from),
		Session: ep.n.cfg.Session, Epoch: rs.inc,
		Seq: rs.consumed.Load(), Frags: 1,
	}, nil)
	ep.conn.WriteToUDP(dg, rs.addr) // best-effort: probes recover lost credits
}

// UDPTransport is one dialed edge incarnation: the socket-backed
// Transport. Send fragments the wire packet to the MTU, blocks while the
// credit window is exhausted (the receiver's inbox is full, or the wire
// is ahead of the pump), probes for lost credits, and returns ErrAborted
// on the caller's abort channel or the endpoint's detach. Like every
// Transport it is owned by a single sending goroutine.
type UDPTransport struct {
	ep     *udpEndpoint
	from   int
	to     int
	peer   *net.UDPAddr
	inc    uint32
	window uint32
	chunk  int // max payload bytes per datagram

	seq      uint32 // fragments sent (sender-goroutine owned)
	credited atomic.Uint32
	notify   chan struct{}
	stop     chan struct{} // the dialing attach session's stop channel
	buf      []byte        // datagram encoding scratch
}

var _ Transport = (*UDPTransport)(nil)

// From returns the sending host; To the receiving host.
func (t *UDPTransport) From() int { return t.from }

// To returns the receiving host.
func (t *UDPTransport) To() int { return t.to }

// credit records a cumulative credit (pump goroutine). Values may arrive
// stale or out of order; only the max advances the window.
func (t *UDPTransport) credit(v uint32) {
	for {
		cur := t.credited.Load()
		if v <= cur {
			return
		}
		if t.credited.CompareAndSwap(cur, v) {
			select {
			case t.notify <- struct{}{}:
			default:
			}
			return
		}
	}
}

// Send fragments payload into MTU-bounded datagrams and writes them,
// honoring the credit window. Zero-length payloads still send one
// (empty) fragment, preserving frame boundaries.
func (t *UDPTransport) Send(payload []byte, abort <-chan struct{}) error {
	frags := (len(payload) + t.chunk - 1) / t.chunk
	if frags == 0 {
		frags = 1
	}
	if frags > 0xFFFF {
		return fmt.Errorf("link: %d-byte payload needs %d fragments, header field holds 65535", len(payload), frags)
	}
	for f := 0; f < frags; f++ {
		if err := t.waitWindow(abort); err != nil {
			return err
		}
		lo := f * t.chunk
		hi := lo + t.chunk
		if hi > len(payload) {
			hi = len(payload)
		}
		t.buf = appendDatagram(t.buf[:0], dgHeader{
			Kind: dgData, From: uint16(t.from), To: uint16(t.to),
			Session: t.ep.n.cfg.Session, Epoch: t.inc, Seq: t.seq,
			Frag: uint16(f), Frags: uint16(frags),
		}, payload[lo:hi])
		if err := t.write(t.buf, abort); err != nil {
			return err
		}
		t.seq++
	}
	return nil
}

// waitWindow blocks until the credit window has room, probing the
// receiver while stalled (credits are unreliable datagrams too).
func (t *UDPTransport) waitWindow(abort <-chan struct{}) error {
	for t.seq-t.credited.Load() >= t.window {
		timer := time.NewTimer(udpProbeEvery)
		select {
		case <-t.notify:
			timer.Stop()
		case <-timer.C:
			t.sendProbe()
		case <-abort:
			timer.Stop()
			return ErrAborted
		case <-t.stop:
			timer.Stop()
			return ErrAborted
		}
	}
	return nil
}

// sendProbe asks the receiver to restate its cumulative credit.
func (t *UDPTransport) sendProbe() {
	var scratch [dgHeaderSize]byte
	dg := appendDatagram(scratch[:0], dgHeader{
		Kind: dgProbe, From: uint16(t.from), To: uint16(t.to),
		Session: t.ep.n.cfg.Session, Epoch: t.inc, Seq: t.seq, Frags: 1,
	}, nil)
	t.ep.conn.WriteToUDP(dg, t.peer)
}

// write puts one datagram on the wire, briefly retrying the transient
// kernel-pressure errors (ENOBUFS/EAGAIN) a send burst can hit so a
// momentary full device queue does not kill a reliable-engine edge.
func (t *UDPTransport) write(dg []byte, abort <-chan struct{}) error {
	for attempt := 0; ; attempt++ {
		_, err := t.ep.conn.WriteToUDP(dg, t.peer)
		if err == nil {
			return nil
		}
		if attempt >= 64 || !transientSendErr(err) {
			return fmt.Errorf("link: udp send %d->%d: %w", t.from, t.to, err)
		}
		timer := time.NewTimer(200 * time.Microsecond)
		select {
		case <-timer.C:
		case <-abort:
			timer.Stop()
			return ErrAborted
		case <-t.stop:
			timer.Stop()
			return ErrAborted
		}
	}
}

// transientSendErr reports whether a socket write failed for a reason
// worth a short retry rather than an edge death.
func transientSendErr(err error) bool {
	return errors.Is(err, syscall.ENOBUFS) || errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EINTR)
}
