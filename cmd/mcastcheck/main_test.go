package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/check"
)

// TestExitCodeOnFailure pins the contract the CI soak depends on: any
// invariant failure must surface as a non-zero exit status, or a parallel
// soak could pass green on a red harness.
func TestExitCodeOnFailure(t *testing.T) {
	orig := runHarness
	defer func() { runHarness = orig }()
	runHarness = func(seed uint64, n, maxFail, workers int) *check.Report {
		return &check.Report{
			Seed:  seed,
			Cases: n,
			Failures: []check.Failure{{
				Case:       3,
				Seed:       seed,
				Violations: []check.Violation{{ID: "stub", Detail: "injected failure"}},
			}},
		}
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-n", "10", "-seed", "1"}, &out, &errw); code != 1 {
		t.Fatalf("failing report exited %d, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAILED") {
		t.Fatalf("failure report not printed:\n%s", out.String())
	}
}

// TestExitCodeOnSuccess runs a real (small) sweep end to end.
func TestExitCodeOnSuccess(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-n", "20", "-seed", "1", "-workers", "2"}, &out, &errw); code != 0 {
		t.Fatalf("passing sweep exited %d, want 0\noutput:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "all passed") {
		t.Fatalf("success report not printed:\n%s", out.String())
	}
	if strings.Contains(out.String(), "elapsed") {
		t.Fatalf("timing leaked onto stdout (must stay byte-identical across -workers):\n%s", out.String())
	}
}

// TestExitCodeOnUsageError: a bad flag is a usage error, not a pass.
func TestExitCodeOnUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("usage error exited %d, want 2", code)
	}
}

// TestReplayExitCode covers the single-case replay path.
func TestReplayExitCode(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-seed", "1", "-case", "7"}, &out, &errw); code != 0 {
		t.Fatalf("replay of a passing case exited %d, want 0\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "invariants hold") {
		t.Fatalf("replay verdict not printed:\n%s", out.String())
	}
}

// TestOnlyFilter pins the -only flag: a restricted sweep runs just the
// selected invariants (the report says so), and an unknown ID is a usage
// error, not a silently-empty sweep.
func TestOnlyFilter(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-n", "5", "-seed", "1", "-workers", "1",
		"-only", "tree-structure, t1-exact"}, &out, &errw)
	if code != 0 {
		t.Fatalf("filtered sweep exited %d, want 0\noutput:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "2 invariants each") {
		t.Fatalf("report does not reflect the filter:\n%s", out.String())
	}
	if len(check.Active()) != len(check.Invariants) {
		t.Fatal("filter leaked past run()")
	}

	out.Reset()
	errw.Reset()
	if code := run([]string{"-n", "5", "-only", "no-such-invariant"}, &out, &errw); code != 2 {
		t.Fatalf("unknown -only ID exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "no-such-invariant") {
		t.Fatalf("unknown ID not named on stderr:\n%s", errw.String())
	}
}

// TestOnlyEmptySelection pins the degenerate -only forms: a value that
// trims to nothing must be a usage error (exit 2), because passing the
// empty selection through Select would silently restore the FULL
// catalogue — the exact opposite of what the caller asked for.
func TestOnlyEmptySelection(t *testing.T) {
	for _, only := range []string{" ", ",", " , ", ",,,"} {
		var out, errw bytes.Buffer
		if code := run([]string{"-n", "5", "-only", only}, &out, &errw); code != 2 {
			t.Fatalf("-only %q exited %d, want 2\nstderr:\n%s", only, code, errw.String())
		}
		if !strings.Contains(errw.String(), "selects no invariants") {
			t.Fatalf("-only %q: empty selection not reported on stderr:\n%s", only, errw.String())
		}
		if len(check.Active()) != len(check.Invariants) {
			t.Fatalf("-only %q corrupted the global filter", only)
		}
	}
}
