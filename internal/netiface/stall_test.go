package netiface

import "testing"

func TestNormalizeStalls(t *testing.T) {
	got, err := NormalizeStalls([]Stall{{5, 7}, {1, 3}, {2, 4}, {4, 5}, {10, 11}})
	if err != nil {
		t.Fatal(err)
	}
	want := []Stall{{1, 7}, {10, 11}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := NormalizeStalls([]Stall{{3, 3}}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := NormalizeStalls([]Stall{{-1, 2}}); err == nil {
		t.Error("negative window accepted")
	}
}

func TestStallDelay(t *testing.T) {
	stalls, err := NormalizeStalls([]Stall{{10, 20}, {30, 35}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t, want float64
	}{
		{0, 0}, {10, 10}, {15, 5}, {19.5, 0.5}, {20, 0}, {25, 0},
		{30, 5}, {34, 1}, {35, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := StallDelay(stalls, c.t); got != c.want {
			t.Errorf("StallDelay(%f) = %f, want %f", c.t, got, c.want)
		}
	}
	if StallDelay(nil, 5) != 0 {
		t.Error("nil stalls must not delay")
	}
}
