package tree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ktree"
)

func chainN(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = i
	}
	return c
}

func TestNewSingleton(t *testing.T) {
	tr := New(7)
	if tr.Root() != 7 || tr.Size() != 1 || tr.Depth() != 0 || tr.RootDegree() != 0 {
		t.Errorf("singleton tree malformed: root=%d size=%d", tr.Root(), tr.Size())
	}
	if err := tr.Validate([]int{7}); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLinearShape(t *testing.T) {
	tr := Linear(chainN(5))
	if tr.Depth() != 4 || tr.RootDegree() != 1 || tr.MaxDegree() != 1 {
		t.Errorf("linear tree: depth=%d rootDeg=%d maxDeg=%d", tr.Depth(), tr.RootDegree(), tr.MaxDegree())
	}
	for i := 1; i < 5; i++ {
		if p, ok := tr.Parent(i); !ok || p != i-1 {
			t.Errorf("Parent(%d) = %d,%v, want %d", i, p, ok, i-1)
		}
	}
	if err := tr.Validate(chainN(5)); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBinomialShape(t *testing.T) {
	// A binomial tree over 2^d nodes has depth d and root degree d.
	for d := 1; d <= 6; d++ {
		n := 1 << d
		tr := Binomial(chainN(n))
		if err := tr.Validate(chainN(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Depth() != d {
			t.Errorf("n=%d: depth=%d, want %d", n, tr.Depth(), d)
		}
		if tr.RootDegree() != d {
			t.Errorf("n=%d: root degree=%d, want %d", n, tr.RootDegree(), d)
		}
	}
}

func TestKBinomialCoversChainExactly(t *testing.T) {
	for n := 1; n <= 130; n++ {
		for k := 1; k <= 7; k++ {
			tr := KBinomial(chainN(n), k)
			if err := tr.Validate(chainN(n)); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
		}
	}
}

func TestKBinomialDegreeBound(t *testing.T) {
	// Definition 1: every vertex has at most k children.
	for n := 1; n <= 130; n++ {
		for k := 1; k <= 7; k++ {
			tr := KBinomial(chainN(n), k)
			if d := tr.MaxDegree(); d > k {
				t.Errorf("n=%d k=%d: max degree %d exceeds k", n, k, d)
			}
		}
	}
}

func TestKBinomialDepthMatchesSteps1(t *testing.T) {
	// A single-packet multicast over the constructed tree must complete in
	// Steps1(n,k) steps; since each tree edge consumes at least one step,
	// the tree depth can never exceed Steps1.
	for n := 2; n <= 130; n++ {
		for k := 1; k <= 6; k++ {
			tr := KBinomial(chainN(n), k)
			if d, s := tr.Depth(), ktree.Steps1(n, k); d > s {
				t.Errorf("n=%d k=%d: depth %d > Steps1 %d", n, k, d, s)
			}
		}
	}
}

func TestKBinomialFullTreeShape(t *testing.T) {
	// When n = N(s,k) exactly, the root must have exactly min(s,k) children
	// and the first (earliest-sent) child heads the largest subtree.
	for k := 1; k <= 5; k++ {
		for s := 1; s <= 7; s++ {
			n := ktree.Coverage(s, k)
			if n > 4096 {
				continue
			}
			tr := KBinomial(chainN(n), k)
			wantDeg := k
			if s < k {
				wantDeg = s
			}
			if tr.RootDegree() != wantDeg {
				t.Errorf("k=%d s=%d n=%d: root degree %d, want %d", k, s, n, tr.RootDegree(), wantDeg)
			}
			kids := tr.Children(0)
			sizes := make([]int, len(kids))
			for i, c := range kids {
				sizes[i] = subtreeSize(tr, c)
			}
			for i := 1; i < len(sizes); i++ {
				if sizes[i] > sizes[i-1] {
					t.Errorf("k=%d s=%d: child subtree sizes not non-increasing: %v", k, s, sizes)
				}
			}
		}
	}
}

func TestKBinomialK1IsLinear(t *testing.T) {
	for n := 1; n <= 40; n++ {
		a, b := KBinomial(chainN(n), 1), Linear(chainN(n))
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			t.Fatalf("n=%d: edge counts differ", n)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Errorf("n=%d: edge %d differs: %v vs %v", n, i, ea[i], eb[i])
			}
		}
	}
}

func TestKBinomialLargeKIsBinomial(t *testing.T) {
	// For k >= ceil(log2 n), the k-binomial tree is the binomial tree.
	for n := 2; n <= 64; n++ {
		k := ktree.CeilLog2(n)
		a, b := KBinomial(chainN(n), k), Binomial(chainN(n))
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("n=%d: edge %d differs: %v vs %v", n, i, ea[i], eb[i])
			}
		}
	}
}

func TestSegmentSpansProperty(t *testing.T) {
	// Contention-freeness prerequisite: every subtree spans a contiguous
	// chain segment (Fig. 11).
	for n := 1; n <= 100; n++ {
		for k := 1; k <= 6; k++ {
			tr := KBinomial(chainN(n), k)
			if !SegmentSpans(tr, chainN(n)) {
				t.Errorf("n=%d k=%d: subtree spans non-contiguous segment", n, k)
			}
		}
	}
}

func TestSegmentSpansDetectsViolation(t *testing.T) {
	// A hand-built tree whose subtree {1,3} skips node 2 must fail.
	tr := New(0)
	tr.AddChild(0, 1)
	tr.AddChild(0, 2)
	tr.AddChild(1, 3)
	if SegmentSpans(tr, []int{0, 1, 2, 3}) {
		t.Error("SegmentSpans accepted a non-contiguous subtree")
	}
}

func TestOptimalSelectsK(t *testing.T) {
	for _, c := range []struct{ n, m, wantK int }{
		{16, 1, 4}, // binomial for single packet
		{16, 4, 2}, // paper Fig. 12(b)
		{64, 8, 2},
	} {
		chain := chainN(c.n)
		tr, k := Optimal(chain, c.m)
		if k != c.wantK {
			t.Errorf("Optimal(n=%d,m=%d) k=%d, want %d", c.n, c.m, k, c.wantK)
		}
		if err := tr.Validate(chain); err != nil {
			t.Errorf("Optimal(n=%d,m=%d): %v", c.n, c.m, err)
		}
	}
	if tr, k := Optimal([]int{9}, 5); k != 1 || tr.Size() != 1 {
		t.Error("Optimal on singleton chain malformed")
	}
}

func TestArbitraryNodeIDs(t *testing.T) {
	// The chain need not be 0..n-1.
	chain := []int{42, 7, 99, 3, 1000, 56, 12}
	tr := KBinomial(chain, 2)
	if err := tr.Validate(chain); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Root() != 42 {
		t.Errorf("root = %d, want 42", tr.Root())
	}
	if !SegmentSpans(tr, chain) {
		t.Error("segment property violated on arbitrary IDs")
	}
}

func TestEdgesPreorderDeterministic(t *testing.T) {
	chain := chainN(17)
	a := KBinomial(chain, 3).Edges()
	b := KBinomial(chain, 3).Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Edges not deterministic")
		}
	}
	if len(a) != 16 {
		t.Errorf("edge count = %d, want 16", len(a))
	}
}

func TestValidateCatchesMissingParticipant(t *testing.T) {
	tr := Linear([]int{0, 1, 2})
	if err := tr.Validate([]int{0, 1, 2, 3}); err == nil {
		t.Error("Validate accepted missing participant")
	}
	if err := tr.Validate([]int{0, 1}); err == nil {
		t.Error("Validate accepted wrong size")
	}
}

func TestAddChildPanics(t *testing.T) {
	tr := New(0)
	tr.AddChild(0, 1)
	for _, f := range []func(){
		func() { tr.AddChild(5, 2) }, // unknown parent
		func() { tr.AddChild(0, 1) }, // duplicate child
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Linear(nil) },
		func() { Binomial([]int{}) },
		func() { KBinomial(chainN(4), 0) },
		func() { KBinomial([]int{1, 2, 1}, 2) },
		func() { KBinomial([]int{-1, 2}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuickKBinomialInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(2 + r.Intn(200)) // n
			vals[1] = reflect.ValueOf(1 + r.Intn(8))   // k
		},
	}
	if err := quick.Check(func(n, k int) bool {
		chain := chainN(n)
		tr := KBinomial(chain, k)
		return tr.Validate(chain) == nil &&
			tr.MaxDegree() <= k &&
			tr.Depth() <= ktree.Steps1(n, k) &&
			SegmentSpans(tr, chain)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func subtreeSize(t *Tree, v int) int {
	n := 1
	for _, c := range t.Children(v) {
		n += subtreeSize(t, c)
	}
	return n
}

func TestSubtreeNodes(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for k := 1; k <= 4; k++ {
			tr := KBinomial(chainN(n), k)
			// The root's subtree is the whole tree, in the same preorder
			// Edges walks.
			all := tr.SubtreeNodes(tr.Root())
			want := []int{tr.Root()}
			for _, e := range tr.Edges() {
				want = append(want, e.Child)
			}
			if !reflect.DeepEqual(all, want) {
				t.Fatalf("n=%d k=%d: root subtree %v, want preorder %v", n, k, all, want)
			}
			// Every node's subtree contains exactly the nodes whose
			// parent chain passes through it, and starts at the node.
			for v := 0; v < n; v++ {
				sub := tr.SubtreeNodes(v)
				if len(sub) == 0 || sub[0] != v {
					t.Fatalf("n=%d k=%d: subtree of %d = %v, must start at %d", n, k, v, sub, v)
				}
				in := make(map[int]bool, len(sub))
				for _, u := range sub {
					in[u] = true
				}
				for u := 0; u < n; u++ {
					want := false
					for w := u; ; {
						if w == v {
							want = true
							break
						}
						p, ok := tr.Parent(w)
						if !ok {
							break
						}
						w = p
					}
					if in[u] != want {
						t.Fatalf("n=%d k=%d: subtree of %d contains %d = %v, want %v", n, k, v, u, in[u], want)
					}
				}
			}
		}
	}
	if got := KBinomial(chainN(5), 2).SubtreeNodes(99); got != nil {
		t.Fatalf("subtree of absent node = %v, want nil", got)
	}
}

func TestOptimalCongestedIdleReducesToOptimal(t *testing.T) {
	idle := func(int, int) int { return 0 }
	for n := 1; n <= 40; n++ {
		for m := 1; m <= 6; m++ {
			t0, k0 := Optimal(chainN(n), m)
			t1, k1 := OptimalCongested(chainN(n), m, 1, idle)
			if k1 != k0 {
				t.Fatalf("n=%d m=%d: idle congested k=%d, Optimal k=%d", n, m, k1, k0)
			}
			e0, e1 := t0.Edges(), t1.Edges()
			if len(e0) != len(e1) {
				t.Fatalf("n=%d m=%d: edge counts differ", n, m)
			}
			for i := range e0 {
				if e0[i] != e1[i] {
					t.Fatalf("n=%d m=%d: edge %d: %v vs %v", n, m, i, e1[i], e0[i])
				}
			}
		}
	}
}

func TestOptimalCongestedMinimizesObjective(t *testing.T) {
	// Load every edge of the idle-optimal tree; with a heavy penalty the
	// planner must pick the k minimizing Steps + penalty*overlap, which an
	// exhaustive scan over candidate fanouts verifies (tie-break: larger
	// k, matching ktree.OptimalK).
	for _, n := range []int{5, 8, 13, 24, 40} {
		for _, m := range []int{1, 2, 4, 8} {
			hot, _ := Optimal(chainN(n), m)
			loaded := map[Edge]int{}
			for _, e := range hot.Edges() {
				loaded[e] = 1
			}
			load := func(p, c int) int { return loaded[Edge{p, c}] }
			const penalty = 50
			got, gotK := OptimalCongested(chainN(n), m, penalty, load)
			kMax := ktree.CeilLog2(n)
			overlap := func(tr *Tree) int {
				o := 0
				for _, e := range tr.Edges() {
					o += load(e.Parent, e.Child)
				}
				return o
			}
			bestK, best := kMax, ktree.Steps(n, m, kMax)+penalty*overlap(KBinomial(chainN(n), kMax))
			for k := kMax - 1; k >= 1; k-- {
				if c := ktree.Steps(n, m, k) + penalty*overlap(KBinomial(chainN(n), k)); c < best {
					bestK, best = k, c
				}
			}
			if gotK != bestK {
				t.Fatalf("n=%d m=%d: congested k=%d, exhaustive argmin k=%d", n, m, gotK, bestK)
			}
			if got := ktree.Steps(n, m, gotK) + penalty*overlap(got); got != best {
				t.Fatalf("n=%d m=%d: returned tree costs %d, argmin costs %d", n, m, got, best)
			}
			if err := got.Validate(chainN(n)); err != nil {
				t.Fatalf("n=%d m=%d: congested tree invalid: %v", n, m, err)
			}
		}
	}
}
