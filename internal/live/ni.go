package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/live/link"
	"repro/internal/message"
	"repro/internal/sim"
)

// niSession is one host's protocol state for one session. Ownership is
// strict so the runtime stays race-free by construction: the state of a
// session at its root is written only by that session's injector
// goroutine; everywhere else only by the host's NI goroutine. The
// runtime reads it after the WaitGroup drains.
type niSession struct {
	index    int                  // session index in the run
	m        int                  // packets in the message
	links    []link.Transport     // child transports in tree send order
	reasm    *message.Reassembler // nil at the root
	arrivals []Arrival
	sends    int
	recvs    int
	startAt  time.Duration    // at the root: first-injection instant
	events   []sim.TraceEvent // only when Config.Record
}

// ni is one host's network interface: a single goroutine draining one
// inbox, serving every session's arrivals in FPFS order.
type ni struct {
	rt       *runtime
	host     int
	inbox    *link.Inbox
	sessions map[uint32]*niSession
}

// startAll launches one goroutine per NI plus one injector per session
// root and returns the WaitGroup that drains them all.
func startAll(rt *runtime, nis map[int]*ni) *sync.WaitGroup {
	var wg sync.WaitGroup
	for _, n := range nis {
		wg.Add(1)
		go func(n *ni) {
			defer wg.Done()
			n.run()
		}(n)
	}
	for _, s := range rt.sessions {
		root := nis[s.Tree.Root()]
		ns := root.sessions[s.MsgID]
		wg.Add(1)
		go func(s Session, root *ni, ns *niSession) {
			defer wg.Done()
			inject(rt, s, root, ns)
		}(s, root, ns)
	}
	return &wg
}

// inject is the source pump of one session: the host DMA feeding the
// root NI. FPFS at the source is packet-major — packet 0 to every child,
// then packet 1, ... — one copy at a time (the NI is a serial server).
func inject(rt *runtime, s Session, root *ni, ns *niSession) {
	// Stamp the session's own start before the first send: per-session
	// latency must not charge a session for the time earlier sessions'
	// injectors held the scheduler.
	ns.startAt = time.Since(rt.start)
	for j, pkt := range s.Packets {
		for _, l := range ns.links {
			if err := l.Send(pkt, rt.abort); err != nil {
				if !errors.Is(err, link.ErrAborted) {
					// A real transport failure (socket error), not a
					// teardown: surface it instead of hanging into the
					// watchdog.
					select {
					case rt.fail <- fmt.Errorf("live: inject %d->%d: %w", root.host, l.To(), err):
					default:
					}
				}
				return // aborted; the collector owns the verdict
			}
			ns.sends++
			if rt.cfg.Record {
				ns.events = append(ns.events, sim.TraceEvent{
					Kind: "inject", Time: rt.since(), Host: root.host,
					Peer: l.To(), Session: ns.index, Packet: j,
				})
			}
		}
	}
}

// run is the NI forwarding loop: admit the next frame (the sender has
// already reserved our buffer slot), forward a copy to every child of
// its session — FPFS: each packet goes out the moment it arrives —
// deliver locally, then release the slot. The loop exits when the
// runtime closes the inbox (all sessions complete) or aborts.
func (n *ni) run() {
	for {
		f, ok := n.inbox.Recv(n.rt.abort)
		if !ok {
			return
		}
		if err := n.serve(f); err != nil {
			n.fail(err)
			return
		}
	}
}

// fail reports the first NI-level failure to the collector; later ones
// are dropped (the first abort tears everything down).
func (n *ni) fail(err error) {
	select {
	case n.rt.fail <- err:
	default:
	}
}

// serve handles one admitted frame end to end.
func (n *ni) serve(f link.Frame) error {
	h, err := message.DecodeHeader(f.Payload)
	if err != nil {
		return fmt.Errorf("live: host %d: undecodable frame from %d: %v", n.host, f.From, err)
	}
	ns, ok := n.sessions[h.MsgID]
	if !ok {
		return fmt.Errorf("live: host %d: frame for unknown session %d from %d", n.host, h.MsgID, f.From)
	}
	j := int(h.Seq)
	ns.recvs++
	ns.arrivals = append(ns.arrivals, Arrival{Packet: j, From: f.From})
	if n.rt.cfg.Record {
		ns.events = append(ns.events, sim.TraceEvent{
			Kind: "deliver", Time: n.rt.since(), Host: n.host,
			Peer: f.From, Session: ns.index, Packet: j,
		})
	}

	// Forward first (FPFS: the copy engine runs ahead of host delivery),
	// then reassemble locally, then free the buffer slot — the slot is
	// held for the packet's full service residency, like the simulator's.
	for _, l := range ns.links {
		if err := l.Send(f.Payload, n.rt.abort); err != nil {
			if !errors.Is(err, link.ErrAborted) {
				return fmt.Errorf("live: host %d: forward to %d: %w", n.host, l.To(), err)
			}
			return nil // aborted mid-forward; collector owns the verdict
		}
		ns.sends++
		if n.rt.cfg.Record {
			ns.events = append(ns.events, sim.TraceEvent{
				Kind: "inject", Time: n.rt.since(), Host: n.host,
				Peer: l.To(), Session: ns.index, Packet: j,
			})
		}
	}
	done, err := ns.reasm.Add(f.Payload)
	if err != nil {
		return fmt.Errorf("live: host %d: packet %d of session %d: %v", n.host, j, h.MsgID, err)
	}
	if done {
		at := time.Since(n.rt.start)
		if n.rt.cfg.Record {
			ns.events = append(ns.events, sim.TraceEvent{
				Kind: "done", Time: n.rt.since(), Host: n.host,
				Peer: -1, Session: ns.index, Packet: -1,
			})
		}
		// The ack channel is sized for every destination; this never
		// blocks.
		n.rt.acks <- ack{sess: ns.index, host: n.host, at: at, data: ns.reasm.Bytes()}
	}
	n.inbox.Release()
	return nil
}
