// Command collectives runs one collective operation on the paper's
// irregular testbed and reports the latency breakdown.
//
// Usage:
//
//	collectives [-op broadcast|multicast|scatter|gather|reduce|barrier]
//	            [-seed 1] [-dests 15] [-packets 8] [-tree optimal|binomial|linear]
//
// Example:
//
//	$ collectives -op reduce -dests 47 -packets 8
//	reduce over 47 participants, 8 packets, k=2 tree: 131.0 us (376 sends)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	op := flag.String("op", "broadcast", "operation: broadcast, multicast, scatter, gather, reduce, barrier")
	seed := flag.Uint64("seed", 1, "topology seed")
	dests := flag.Int("dests", 15, "number of destinations (ignored for broadcast)")
	packets := flag.Int("packets", 8, "message length in packets")
	treeKind := flag.String("tree", "optimal", "tree policy: optimal, binomial, linear")
	wseed := flag.Uint64("wseed", 7, "workload seed")
	combine := flag.Float64("combine", 0, "per-packet combining cost for reduce (us)")
	flag.Parse()

	sys := repro.NewIrregularSystem(repro.DefaultIrregularConfig(), *seed)
	params := repro.DefaultParams()

	var policy core.TreePolicy
	switch *treeKind {
	case "optimal":
		policy = core.OptimalTree
	case "binomial":
		policy = core.BinomialTree
	case "linear":
		policy = core.LinearTree
	default:
		fmt.Fprintf(os.Stderr, "collectives: unknown tree policy %q\n", *treeKind)
		os.Exit(1)
	}

	set := workload.DestSet(workload.NewRNG(*wseed), sys.Net.NumHosts(), *dests)
	spec := core.Spec{Source: set[0], Dests: set[1:], Packets: *packets, Policy: policy}

	var res *collectives.Result
	switch *op {
	case "broadcast":
		res = collectives.Broadcast(sys, set[0], *packets, policy, params)
		spec.Dests = nil // for reporting below
	case "multicast":
		res = collectives.Multicast(sys, spec, params)
	case "scatter":
		res = collectives.Scatter(sys, spec, params)
	case "gather":
		res = collectives.Gather(sys, spec, params)
	case "reduce":
		res = collectives.Reduce(sys, spec, collectives.ReduceParams{Sim: params, TCombine: *combine})
	case "barrier":
		res = collectives.Barrier(sys, spec, params)
	default:
		fmt.Fprintf(os.Stderr, "collectives: unknown operation %q\n", *op)
		os.Exit(1)
	}

	participants := *dests
	if *op == "broadcast" {
		participants = sys.Net.NumHosts() - 1
	}
	fmt.Printf("system: %s (seed %d)\n", sys.Net.Summary(), *seed)
	fmt.Printf("%s over %d participants, %d packets, k=%d tree: %.1f us (%d sends",
		*op, participants, *packets, res.K, res.Latency, res.Sends)
	if res.ChannelWait > 0 {
		fmt.Printf(", %.1f us channel wait", res.ChannelWait)
	}
	fmt.Println(")")
}
