// irregular64 reruns the paper's Section 5.2 evaluation in miniature: on
// the 64-host irregular testbed it sweeps message lengths for 15 and 47
// destinations and prints the binomial vs optimal k-binomial comparison —
// the data behind Fig. 14(a).
//
//	go run ./examples/irregular64
package main

import (
	"fmt"

	"repro"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	sweep := workload.Sweep{Trials: 10, Topologies: 4, BaseSeed: 0x64}
	params := repro.DefaultParams()

	systems := make([]*repro.System, sweep.Topologies)
	for t := range systems {
		systems[t] = repro.NewIrregularSystem(repro.DefaultIrregularConfig(), sweep.TopologySeed(t))
	}

	tb := stats.NewTable(
		fmt.Sprintf("Multicast latency (us), mean over %d dest sets x %d topologies",
			sweep.Trials, sweep.Topologies),
		"m", "15d binomial", "15d k-bin", "speedup", "47d binomial", "47d k-bin", "speedup")

	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		row := []float64{}
		for _, dests := range []int{15, 47} {
			var bin, kbin stats.Summary
			for t, sys := range systems {
				for i := 0; i < sweep.Trials; i++ {
					set := workload.DestSet(sweep.TrialRNG(t, i), 64, dests)
					spec := repro.Spec{Source: set[0], Dests: set[1:], Packets: m}
					spec.Policy = repro.BinomialTree
					bin.Add(sys.Latency(spec, params))
					spec.Policy = repro.OptimalTree
					kbin.Add(sys.Latency(spec, params))
				}
			}
			row = append(row, bin.Mean(), kbin.Mean(), bin.Mean()/kbin.Mean())
		}
		tb.AddFloats(fmt.Sprintf("%d", m), 2, row...)
	}
	fmt.Print(tb.String())
	fmt.Println("\nshape check (paper Fig. 14): the speedup columns grow with m, toward ~2x.")
}
