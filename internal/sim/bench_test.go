package sim

import (
	"testing"

	"repro/internal/stepsim"
)

// BenchmarkEngineEventLoop measures raw event-loop throughput: schedule
// and drain a self-rescheduling chain plus a fan of one-shot events, the
// access pattern of the multicast engines. The events/sec metric and
// allocs/op land in BENCH_sim.json; allocs/op is the pooling regression
// canary (the container/heap loop boxed every event).
func BenchmarkEngineEventLoop(b *testing.B) {
	const chain, fan = 256, 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(0)
		e.Grow(chain + fan)
		ticks, shots := 0, 0
		var tick func()
		tick = func() {
			ticks++
			if ticks < chain {
				e.At(e.Now()+1, tick)
			}
		}
		e.At(0, tick)
		shot := func() { shots++ } // one closure for the whole fan, so
		// allocs/op measures the engine, not the benchmark harness
		for j := 0; j < fan; j++ {
			e.At(float64(j%17), shot)
		}
		e.Run()
		if ticks+shots != chain+fan {
			b.Fatalf("ran %d events, want %d", ticks+shots, chain+fan)
		}
		e.Recycle()
	}
	b.ReportMetric(float64(chain+fan)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineMulticastFPFS measures one full 32-node 8-packet
// event-driven multicast on the pooled engine — the per-case unit of
// work the check harness and the sweeps repeat thousands of times.
func BenchmarkEngineMulticastFPFS(b *testing.B) {
	_, r, _ := testSystem(1)
	tr := benchTree(2)
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Multicast(r, tr, 8, p, stepsim.FPFS)
	}
}

// BenchmarkEngineMulticastLossy is the same multicast under a 2% drop
// fault plane: the fault-sampling path plus the early op-recycling branch.
func BenchmarkEngineMulticastLossy(b *testing.B) {
	_, r, _ := testSystem(1)
	tr := benchTree(2)
	p := DefaultParams()
	sessions := []Session{{Tree: tr, Packets: 8}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConcurrentFaulty(r, sessions, p, stepsim.FPFS, FaultPlan{Seed: uint64(i + 1), DropRate: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}
