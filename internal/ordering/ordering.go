// Package ordering produces orderings of hosts on which segment-recursive
// multicast trees (package tree) incur little or no link contention.
//
// The paper builds k-binomial trees on a contention-free ordering of the
// participating nodes: an ordering where messages between chain positions
// a < b never share links with messages between positions c < d when the
// intervals [a,b] and [c,d] do not overlap. On k-ary n-cubes with
// dimension-ordered routing such orderings exist (the dimension-ordered
// chain); on irregular networks with up*/down* routing none exists in
// general, and the Chain Concatenated Ordering (CCO) of Kesavan,
// Bondalapati & Panda (HPCA-3 1997) is used to keep contention minimal.
//
// This package reimplements CCO from its cited description: the hosts of
// each switch form a chain, and the per-switch chains are concatenated in
// depth-first order over the up*/down* spanning tree of the switch graph.
// Consecutive chain segments therefore route through a bounded set of tree
// links, which is what the recursive segment construction needs. Measured
// contention (Conflicts below) is reported by the experiments instead of
// being assumed zero.
package ordering

import (
	"fmt"
	"sort"

	"repro/internal/routing"
	"repro/internal/stepsim"
	"repro/internal/topology"
	"repro/internal/tree"
)

// Ordering is a permutation of all hosts of a network, fixing the base
// chain from which multicast chains are cut.
type Ordering struct {
	name  string
	hosts []int
	pos   []int // host -> position
}

// New builds an Ordering from an explicit host permutation.
func New(name string, hosts []int) *Ordering {
	pos := make([]int, len(hosts))
	for i := range pos {
		pos[i] = -1
	}
	for i, h := range hosts {
		if h < 0 || h >= len(hosts) || pos[h] != -1 {
			panic(fmt.Sprintf("ordering: %q is not a permutation (host %d)", name, h))
		}
		pos[h] = i
	}
	return &Ordering{name: name, hosts: hosts, pos: pos}
}

// Name identifies the ordering ("cco", "dimension", "identity", "random").
func (o *Ordering) Name() string { return o.name }

// Hosts returns the full base chain. The slice is owned by the Ordering.
func (o *Ordering) Hosts() []int { return o.hosts }

// Position returns the chain position of a host.
func (o *Ordering) Position(h int) int {
	if h < 0 || h >= len(o.pos) {
		panic(fmt.Sprintf("ordering: host %d out of range [0,%d)", h, len(o.pos)))
	}
	return o.pos[h]
}

// Chain cuts the multicast chain for a source and destination set: the
// participants sorted by base-chain position and cyclically rotated so the
// source comes first. Rotation preserves the cyclic adjacency structure of
// the base ordering, the standard construction for ordered-chain multicast.
func (o *Ordering) Chain(source int, dests []int) []int {
	members := append([]int{source}, dests...)
	seen := map[int]bool{}
	for _, h := range members {
		if h < 0 || h >= len(o.pos) {
			panic(fmt.Sprintf("ordering: participant %d out of range", h))
		}
		if seen[h] {
			panic(fmt.Sprintf("ordering: duplicate participant %d", h))
		}
		seen[h] = true
	}
	sort.Slice(members, func(i, j int) bool { return o.pos[members[i]] < o.pos[members[j]] })
	// Rotate so the source leads.
	src := 0
	for i, h := range members {
		if h == source {
			src = i
			break
		}
	}
	chain := make([]int, 0, len(members))
	chain = append(chain, members[src:]...)
	chain = append(chain, members[:src]...)
	return chain
}

// Identity returns the trivial 0..n-1 ordering, the uninformed baseline.
func Identity(n int) *Ordering {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	return New("identity", hosts)
}

// CCO computes the Chain Concatenated Ordering for an irregular network
// routed by up*/down*: a depth-first traversal of the routing spanning
// tree, appending each visited switch's hosts (ascending) as one chain.
func CCO(r *routing.UpDown) *Ordering {
	net := r.Network()
	hosts := make([]int, 0, net.NumHosts())
	var visit func(sw int)
	visit = func(sw int) {
		hosts = append(hosts, net.SwitchHosts(sw)...)
		for _, c := range r.TreeChildren(sw) {
			visit(c)
		}
	}
	visit(r.Root())
	if len(hosts) != net.NumHosts() {
		panic(fmt.Sprintf("ordering: CCO covered %d of %d hosts", len(hosts), net.NumHosts()))
	}
	return New("cco", hosts)
}

// Dimension computes the dimension-ordered chain for a k-ary n-cube: hosts
// sorted lexicographically by switch coordinate, most significant dimension
// first — i.e. plain switch-index order for topology.Cube's numbering. On
// hypercubes (arity 2) with e-cube routing this chain is contention-free:
// same-step transmissions of the segment-recursive trees are channel-
// disjoint (McKinley et al., verified by tests). On wider tori the
// positive-direction wrap-around links leave a small residue of conflicts,
// which the experiments report via Conflicts.
func Dimension(net *topology.Network, arity, dims int) *Ordering {
	n := 1
	for i := 0; i < dims; i++ {
		n *= arity
	}
	if net.NumSwitches() != n {
		panic(fmt.Sprintf("ordering: network has %d switches, want %d^%d", net.NumSwitches(), arity, dims))
	}
	hosts := make([]int, 0, net.NumHosts())
	for s := 0; s < n; s++ {
		hosts = append(hosts, net.SwitchHosts(s)...)
	}
	return New("dimension", hosts)
}

// CubeChain cuts a multicast chain on a k-ary n-cube using source-relative
// translation instead of rotation: each participant is keyed by the
// coordinatewise difference to the source (mod arity), and participants are
// sorted by the resulting relative index. Because positive-direction e-cube
// routing is invariant under torus translation, the relative chain inherits
// the contention-freeness of the absolute dimension-ordered chain with the
// source at position zero — which plain rotation does not (a rotated chain
// wraps, and wrapped segments cross the rest of the chain).
func CubeChain(net *topology.Network, arity, dims, source int, dests []int) []int {
	members := append([]int{source}, dests...)
	seen := map[int]bool{}
	for _, h := range members {
		if h < 0 || h >= net.NumHosts() {
			panic(fmt.Sprintf("ordering: participant %d out of range", h))
		}
		if seen[h] {
			panic(fmt.Sprintf("ordering: duplicate participant %d", h))
		}
		seen[h] = true
	}
	srcCoord := topology.CubeCoord(net.HostSwitch(source), arity, dims)
	rel := func(h int) int {
		c := topology.CubeCoord(net.HostSwitch(h), arity, dims)
		idx, stride := 0, 1
		for d := 0; d < dims; d++ {
			idx += ((c[d] - srcCoord[d] + arity) % arity) * stride
			stride *= arity
		}
		return idx
	}
	sort.Slice(members, func(i, j int) bool { return rel(members[i]) < rel(members[j]) })
	if members[0] != source {
		panic("ordering: source not first after translation (multiple hosts per cube switch?)")
	}
	return members
}

// Conflicts counts contention in a multicast schedule: pairs of packet
// transmissions scheduled in the same step whose routes share a directed
// channel. A depth-contention-free tree scores zero.
func Conflicts(tr *tree.Tree, m int, d stepsim.Discipline, router routing.Router) int {
	sched := stepsim.Run(tr, m, d)
	byStep := map[int][]routing.Route{}
	maxStep := 0
	for _, s := range sched.Sends {
		byStep[s.Step] = append(byStep[s.Step], router.Route(s.From, s.To))
		if s.Step > maxStep {
			maxStep = s.Step
		}
	}
	conflicts := 0
	for step := 1; step <= maxStep; step++ {
		rs := byStep[step]
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				if routing.SharesChannel(rs[i], rs[j]) {
					conflicts++
				}
			}
		}
	}
	return conflicts
}

// PairwiseChainConflicts measures how close an ordering comes to the formal
// contention-free property over a participant chain: for all disjoint
// position intervals (a<b) < (c<d) drawn from consecutive chain neighbors,
// count route pairs sharing a channel. Exhaustive over adjacent pairs only
// (the full quadruple space is O(n^4)); adjacent pairs are what the
// recursive construction stresses.
func PairwiseChainConflicts(chain []int, router routing.Router) int {
	conflicts := 0
	for i := 0; i+1 < len(chain); i++ {
		a := router.Route(chain[i], chain[i+1])
		for j := i + 2; j+1 < len(chain); j++ {
			b := router.Route(chain[j], chain[j+1])
			if routing.SharesChannel(a, b) {
				conflicts++
			}
		}
	}
	return conflicts
}
