package link

import (
	"bytes"
	"testing"
)

// FuzzDecodeDatagram hammers the datagram decoder with arbitrary bytes:
// it must never panic, never accept a datagram whose checksum does not
// cover its exact bytes, and whatever it does accept must re-encode to
// the identical datagram (the codec is canonical). The checked-in corpus
// under testdata/fuzz seeds truncations, field corruptions and valid
// datagrams of every kind.
func FuzzDecodeDatagram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MC"))
	f.Add(appendDatagram(nil, dgHeader{Kind: dgData, From: 1, To: 2, Session: 3, Epoch: 4, Seq: 5, Frags: 1}, []byte("hello")))
	f.Add(appendDatagram(nil, dgHeader{Kind: dgCredit, From: 2, To: 1, Session: 3, Epoch: 4, Seq: 17, Frags: 1}, nil))
	f.Add(appendDatagram(nil, dgHeader{Kind: dgProbe, From: 2, To: 1, Session: 3, Epoch: 4, Frags: 1}, nil))
	f.Add(appendDatagram(nil, dgHeader{Kind: dgCtl, From: 0, To: 9, Session: 8, Frags: 1}, []byte("STOP")))
	long := appendDatagram(nil, dgHeader{Kind: dgData, Session: 1, Frag: 2, Frags: 9, Seq: 1 << 20}, bytes.Repeat([]byte{0xAB}, 1200))
	f.Add(long)
	trunc := append([]byte{}, long...)
	f.Add(trunc[:40])
	flip := append([]byte{}, long...)
	flip[50] ^= 0xFF
	f.Add(flip)

	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := decodeDatagram(b)
		if err != nil {
			return
		}
		if int(h.Length) != len(payload) {
			t.Fatalf("accepted header length %d over %d payload bytes", h.Length, len(payload))
		}
		if h.Kind < dgData || h.Kind > dgCtl {
			t.Fatalf("accepted unknown kind %d", h.Kind)
		}
		if h.Frags == 0 || h.Frag >= h.Frags {
			t.Fatalf("accepted fragment %d/%d", h.Frag, h.Frags)
		}
		re := appendDatagram(nil, h, payload)
		if !bytes.Equal(re, b[:len(re)]) || len(re) != len(b) {
			t.Fatalf("accepted datagram is not canonical: %d bytes re-encode to %d", len(b), len(re))
		}
	})
}
