// Package repro is a Go reproduction of Kesavan & Panda, "Optimal
// Multicast with Packetization and Network Interface Support" (ICPP 1997):
// k-binomial multicast trees for multi-packet messages on systems whose
// network interfaces forward multicast packets First-Packet-First-Served
// (FPFS).
//
// The package is a facade over the implementation packages:
//
//   - internal/ktree:       N(s,k) coverage, t1, and the Theorem 3 optimal-k search
//   - internal/tree:        linear / binomial / k-binomial tree construction
//   - internal/stepsim:     exact step-granularity schedules (Figs. 5 and 8)
//   - internal/topology:    irregular switch networks, k-ary n-cubes, meshes
//   - internal/routing:     up*/down* (single- and multipath), e-cube, mesh XY
//   - internal/ordering:    CCO, POC, and dimension-ordered chains
//   - internal/sim:         contention-modeling discrete-event simulation
//   - internal/flitsim:     cycle-accurate flit-level wormhole validation
//   - internal/collectives: scatter/gather/reduce/barrier on the same trees
//   - internal/message:     packet wire format, fragmentation, reassembly
//   - internal/comm:        rank-addressed groups with byte-level collectives
//   - internal/analytic:    the paper's closed-form latency and buffer models
//   - internal/core:        the planning/execution engine this facade wraps
//
// # Quick start
//
//	sys := repro.NewIrregularSystem(repro.DefaultIrregularConfig(), 1)
//	spec := repro.Spec{Source: 0, Dests: []int{5, 9, 23, 44}, Packets: 8}
//	plan := sys.Plan(spec)                       // optimal k-binomial tree
//	res := sys.Simulate(plan, repro.DefaultParams(), repro.FPFS)
//	fmt.Printf("k=%d latency=%.1fus\n", plan.K, res.Latency)
package repro

import (
	"repro/internal/analytic"
	"repro/internal/collectives"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/ktree"
	"repro/internal/membership"
	"repro/internal/netiface"
	"repro/internal/reliable"
	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/topology"
)

// Re-exported core types. See the corresponding internal packages for
// full documentation.
type (
	// System is a simulatable machine: network + routing + base ordering.
	System = core.System
	// Spec describes one multicast operation.
	Spec = core.Spec
	// Plan is a ready-to-run multicast (chain, tree, chosen k).
	Plan = core.Plan
	// TreePolicy selects the multicast tree shape.
	TreePolicy = core.TreePolicy
	// Params are the technology constants of the event simulation.
	Params = sim.Params
	// Result is the outcome of one simulated multicast.
	Result = sim.Result
	// Discipline is the NI forwarding discipline.
	Discipline = stepsim.Discipline
	// IrregularConfig parameterizes the random irregular network generator.
	IrregularConfig = topology.IrregularConfig
	// Costs is the reduced parameter set of the closed-form models.
	Costs = analytic.Costs
)

// Tree policies.
const (
	OptimalTree  = core.OptimalTree
	BinomialTree = core.BinomialTree
	LinearTree   = core.LinearTree
	FixedKTree   = core.FixedKTree
)

// NI forwarding disciplines.
const (
	FPFS         = stepsim.FPFS
	FCFS         = stepsim.FCFS
	Conventional = stepsim.Conventional
)

// NewIrregularSystem generates a random irregular switch network (per cfg)
// with up*/down* routing and the CCO base ordering, deterministically from
// the seed. This is the paper's Section 5.2 testbed.
func NewIrregularSystem(cfg IrregularConfig, seed uint64) *System {
	return core.NewIrregularSystem(cfg, seed)
}

// NewCubeSystem builds a k-ary n-cube with e-cube routing and the
// dimension-ordered base ordering.
func NewCubeSystem(arity, dims int) *System {
	return core.NewCubeSystem(arity, dims)
}

// NewMeshSystem builds an arity^dims mesh with dimension-ordered routing.
func NewMeshSystem(arity, dims int) *System {
	return core.NewMeshSystem(arity, dims)
}

// Session is one multicast of a concurrent workload (see Concurrent).
type Session = sim.Session

// ConcurrentResult reports a multi-session simulation.
type ConcurrentResult = sim.ConcurrentResult

// Concurrent simulates several multicast sessions sharing the network and
// the per-host network interfaces, under one forwarding discipline.
func Concurrent(sys *System, sessions []Session, p Params, d Discipline) *ConcurrentResult {
	return sim.Concurrent(sys.Router, sessions, p, d)
}

// DefaultIrregularConfig is the paper's testbed shape: 64 hosts on 16
// eight-port switches.
func DefaultIrregularConfig() IrregularConfig { return topology.DefaultIrregular() }

// DefaultParams are the paper's Section 5.2 technology constants.
func DefaultParams() Params { return sim.DefaultParams() }

// Fault injection and reliable delivery (see internal/sim and
// internal/reliable).
type (
	// FaultPlan describes the dynamic faults of one run: seeded packet
	// drop/corruption/ACK-loss probabilities, NI stall windows, and
	// scheduled link kills. The zero value is lossless.
	FaultPlan = sim.FaultPlan
	// LinkKill schedules the death of one link at an absolute time.
	LinkKill = sim.LinkKill
	// HostStall freezes one host's NI send engine during a window.
	HostStall = sim.HostStall
	// Stall is one half-open [From, Until) send-freeze window.
	Stall = netiface.Stall
	// FaultStats counts the faults a run actually injected.
	FaultStats = sim.FaultStats
	// ReliableConfig tunes the ACK/NACK retransmission protocol.
	ReliableConfig = reliable.Config
	// ReliableResult reports one reliable multicast delivery.
	ReliableResult = reliable.Result
	// DeliveryError is the typed failure when destinations stay
	// undelivered (partition or exhausted retries).
	DeliveryError = reliable.DeliveryError
	// HostCrash schedules a crash-stop (RecoverAt 0) or crash-recovery
	// host fault at an absolute time.
	HostCrash = sim.HostCrash
	// CrashError is the typed failure when host crashes leave delivery
	// below the configured quorum (or take down the root).
	CrashError = reliable.CrashError
	// DeliveryStatus is the three-valued reliable-delivery verdict.
	DeliveryStatus = reliable.Status
	// GroupView is one epoch-numbered membership view installed by the
	// heartbeat failure detector during a crash-tolerant delivery.
	GroupView = membership.View
	// MembershipConfig tunes the heartbeat failure detector.
	MembershipConfig = membership.Config
)

// Reliable-delivery verdicts (see reliable.Status).
const (
	// Delivered: every destination received the full message.
	Delivered = reliable.Delivered
	// DeliveredPartial: crashes left some destinations unreached, but at
	// least the configured quorum completed.
	DeliveredPartial = reliable.DeliveredPartial
	// DeliveryFailed: delivery fell below quorum (or the root crashed).
	DeliveryFailed = reliable.Failed
)

// DefaultReliableConfig returns the reliable protocol defaults.
func DefaultReliableConfig() ReliableConfig { return reliable.DefaultConfig() }

// DeliverReliable multicasts payload over the plan's tree under a fault
// plan, with per-packet ACK/NACK retransmission, duplicate suppression,
// and mid-flight tree repair around killed links. Under a zero fault plan
// it reproduces Simulate's FPFS latencies exactly. The error, when
// non-nil, is a *DeliveryError listing the destinations given up on.
func DeliverReliable(sys *System, plan *Plan, payload []byte, cfg ReliableConfig, fp FaultPlan) (*ReliableResult, error) {
	return reliable.Deliver(sys, plan, payload, cfg, fp)
}

// CollectiveResult reports one collective operation (see package
// internal/collectives).
type CollectiveResult = collectives.Result

// Broadcast runs an m-packet broadcast from source to every other host
// under FPFS, over the given tree policy.
func Broadcast(sys *System, source, m int, policy TreePolicy, p Params) *CollectiveResult {
	return collectives.Broadcast(sys, source, m, policy, p)
}

// Scatter sends a distinct m-packet message from the source to each
// destination, streamed down the multicast tree.
func Scatter(sys *System, spec Spec, p Params) *CollectiveResult {
	return collectives.Scatter(sys, spec, p)
}

// Gather collects a distinct m-packet message from every destination at
// the source along reversed tree paths.
func Gather(sys *System, spec Spec, p Params) *CollectiveResult {
	return collectives.Gather(sys, spec, p)
}

// Reduce performs a pipelined per-packet reduction over the reversed
// multicast tree, delivering the combined result at the source.
func Reduce(sys *System, spec Spec, p Params) *CollectiveResult {
	return collectives.Reduce(sys, spec, collectives.ReduceParams{Sim: p})
}

// Barrier synchronizes the participants: a 1-packet reduce followed by a
// 1-packet broadcast.
func Barrier(sys *System, spec Spec, p Params) *CollectiveResult {
	return collectives.Barrier(sys, spec, p)
}

// OptimalK returns the Theorem 3 optimal fanout bound for an m-packet
// multicast to a set of n nodes (source included), with the resulting
// FPFS step count t1 + (m-1)k.
func OptimalK(n, m int) (k, steps int) { return ktree.OptimalK(n, m) }

// Coverage returns N(s, k), the number of nodes a k-binomial tree covers
// in s steps (Lemma 1).
func Coverage(s, k int) int { return ktree.Coverage(s, k) }

// ModelLatency evaluates the paper's closed-form FPFS latency model
// t_s + (t1 + (m-1)k)*t_step + t_r for the optimal k.
func ModelLatency(n, m int, c Costs) (latency float64, k int) {
	return analytic.SmartOptimal(n, m, c)
}

// Group is a rank-addressed communicator over a subset of hosts with
// byte-level collective operations (see internal/comm).
type Group = comm.Group

// BcastReliableResult reports a crash-tolerant group broadcast (see
// Group.BcastReliable).
type BcastReliableResult = comm.BcastReliableResult

// NewGroup creates a communicator over the given hosts (rank i =
// hosts[i]).
func NewGroup(sys *System, hosts []int) (*Group, error) { return comm.New(sys, hosts) }
