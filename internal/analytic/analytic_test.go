package analytic

import (
	"math"
	"testing"

	"repro/internal/ktree"
)

var paperCosts = Costs{THostSend: 12.5, THostRecv: 12.5, TStep: 5.4}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCostsValidate(t *testing.T) {
	if err := paperCosts.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Costs{
		{THostSend: -1, TStep: 1},
		{TStep: 0},
		{THostRecv: -2, TStep: 1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", c)
		}
	}
}

func TestFig4SinglePacketComparison(t *testing.T) {
	// Paper Fig. 4 with 3 destinations (n = 4):
	// conventional = 2*(t_s + t_step + t_r), smart = t_s + 2*t_step + t_r.
	conv := ConventionalSinglePacket(4, paperCosts)
	smart := SmartSinglePacket(4, paperCosts)
	if !approx(conv, 2*(12.5+5.4+12.5)) {
		t.Errorf("conventional = %f", conv)
	}
	if !approx(smart, 12.5+2*5.4+12.5) {
		t.Errorf("smart = %f", smart)
	}
	if smart >= conv {
		t.Error("smart not faster than conventional")
	}
}

func TestSmartAdvantageGrowsWithN(t *testing.T) {
	prev := -1.0
	for n := 2; n <= 64; n *= 2 {
		gap := ConventionalSinglePacket(n, paperCosts) - SmartSinglePacket(n, paperCosts)
		if gap <= prev {
			t.Errorf("n=%d: advantage %f did not grow (prev %f)", n, gap, prev)
		}
		prev = gap
	}
}

func TestSmartKBinomialMatchesStepFormula(t *testing.T) {
	for _, n := range []int{4, 16, 33, 64} {
		for _, m := range []int{1, 3, 8} {
			for k := 1; k <= ktree.CeilLog2(n); k++ {
				got := SmartKBinomial(n, m, k, paperCosts)
				want := 12.5 + float64(ktree.Steps(n, m, k))*5.4 + 12.5
				if !approx(got, want) {
					t.Errorf("SmartKBinomial(%d,%d,%d) = %f, want %f", n, m, k, got, want)
				}
			}
		}
	}
}

func TestFig5ModelLatencies(t *testing.T) {
	// Paper Section 2.6: binomial = t_s + 6 t_step + t_r, linear =
	// t_s + 5 t_step + t_r for n=4, m=3.
	bin := SmartBinomial(4, 3, paperCosts)
	lin := SmartLinear(4, 3, paperCosts)
	if !approx(bin, 12.5+6*5.4+12.5) {
		t.Errorf("binomial = %f", bin)
	}
	if !approx(lin, 12.5+5*5.4+12.5) {
		t.Errorf("linear = %f", lin)
	}
	if lin >= bin {
		t.Error("linear tree should win this configuration")
	}
}

func TestSmartOptimalNeverWorse(t *testing.T) {
	for n := 2; n <= 64; n++ {
		for m := 1; m <= 32; m++ {
			opt, k := SmartOptimal(n, m, paperCosts)
			if k < 1 || k > ktree.CeilLog2(n) {
				t.Fatalf("k=%d out of range", k)
			}
			if opt > SmartBinomial(n, m, paperCosts)+1e-9 {
				t.Errorf("n=%d m=%d: optimal %f worse than binomial", n, m, opt)
			}
			if opt > SmartLinear(n, m, paperCosts)+1e-9 {
				t.Errorf("n=%d m=%d: optimal %f worse than linear", n, m, opt)
			}
		}
	}
}

func TestSpeedupHeadline(t *testing.T) {
	// The paper reports the k-binomial tree is up to ~2x better than the
	// binomial tree for 64-node systems across its m range.
	best := 0.0
	for _, n := range []int{16, 32, 48, 64} {
		for m := 1; m <= 32; m++ {
			if s := Speedup(n, m, paperCosts); s > best {
				best = s
			}
		}
	}
	if best < 1.7 || best > 3.0 {
		t.Errorf("peak model speedup = %f, want within [1.7, 3.0] (paper: up to 2x)", best)
	}
	// Speedup grows with m (paper Fig. 14): compare m=2 vs m=16 at n=48.
	if Speedup(48, 16, paperCosts) <= Speedup(48, 2, paperCosts) {
		t.Error("speedup did not grow with packet count")
	}
}

func TestSpeedupAtLeastOne(t *testing.T) {
	for n := 2; n <= 70; n++ {
		for m := 1; m <= 40; m++ {
			if s := Speedup(n, m, paperCosts); s < 1-1e-9 {
				t.Errorf("speedup(%d,%d) = %f < 1", n, m, s)
			}
		}
	}
}

func TestConventionalMultiPacket(t *testing.T) {
	// m=1 must agree with the single-packet form.
	for n := 2; n <= 64; n++ {
		if !approx(ConventionalMultiPacket(n, 1, paperCosts), ConventionalSinglePacket(n, paperCosts)) {
			t.Errorf("n=%d: m=1 disagrees with single-packet formula", n)
		}
	}
	// Monotone in m.
	if ConventionalMultiPacket(16, 4, paperCosts) <= ConventionalMultiPacket(16, 2, paperCosts) {
		t.Error("conventional latency not monotone in m")
	}
}

func TestBufferResidency(t *testing.T) {
	// Section 3.3.2: T_c = ((c-1)m + 1) t_sq, T_p = c t_sq.
	for c := 2; c <= 8; c++ {
		for m := 1; m <= 32; m++ {
			fc := BufferResidencyFCFS(c, m)
			fp := BufferResidencyFPFS(c)
			if fc != (c-1)*m+1 {
				t.Errorf("FCFS(%d,%d) = %d", c, m, fc)
			}
			if fp != c {
				t.Errorf("FPFS(%d) = %d", c, fp)
			}
			if fp > fc {
				t.Errorf("c=%d m=%d: FPFS residency %d exceeds FCFS %d", c, m, fp, fc)
			}
		}
	}
	// c = 1: both disciplines inject once per packet.
	if BufferResidencyFCFS(1, 9) != 1 || BufferResidencyFPFS(1) != 1 {
		t.Error("single-child residency should be 1 for both")
	}
}

func TestPeakBufferPackets(t *testing.T) {
	if PeakBufferPacketsFCFS(8) != 8 {
		t.Error("FCFS must hold the whole message")
	}
	if PeakBufferPacketsFPFS(3, 32) != 4 {
		t.Errorf("FPFS peak = %d, want c+1 = 4", PeakBufferPacketsFPFS(3, 32))
	}
	if PeakBufferPacketsFPFS(5, 2) != 2 {
		t.Error("FPFS peak bounded by m")
	}
}

func TestCrossoverPackets(t *testing.T) {
	// Fig. 5 shows linear beats binomial for n=4, m=3; the crossover for
	// n=4 must therefore be <= 3. Crossovers grow with n.
	if c := CrossoverPackets(4); c > 3 {
		t.Errorf("CrossoverPackets(4) = %d, want <= 3", c)
	}
	prev := 0
	for _, n := range []int{4, 8, 16, 32, 64} {
		c := CrossoverPackets(n)
		if c < prev {
			t.Errorf("crossover not monotone at n=%d: %d < %d", n, c, prev)
		}
		prev = c
	}
	// After the crossover the linear model stays ahead.
	n := 16
	c := CrossoverPackets(n)
	for m := c; m < c+10; m++ {
		if SmartLinear(n, m, paperCosts) >= SmartBinomial(n, m, paperCosts) {
			t.Errorf("m=%d: linear not ahead after crossover", m)
		}
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { SmartSinglePacket(1, paperCosts) },
		func() { ConventionalSinglePacket(0, paperCosts) },
		func() { SmartKBinomial(1, 1, 1, paperCosts) },
		func() { ConventionalMultiPacket(4, 0, paperCosts) },
		func() { BufferResidencyFCFS(0, 4) },
		func() { BufferResidencyFCFS(2, 0) },
		func() { BufferResidencyFPFS(0) },
		func() { PeakBufferPacketsFCFS(0) },
		func() { PeakBufferPacketsFPFS(0, 1) },
		func() { CrossoverPackets(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
