package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/live/link"
	"repro/internal/membership"
	"repro/internal/message"
	"repro/internal/reliable"
	"repro/internal/tree"
)

// This file is the live port of internal/reliable: the same protocol —
// per-edge retransmission with capped backoff+jitter, duplicate
// suppression, heartbeat-driven membership with epoch fencing, and
// Fig.-11 subtree adoption — executed by real goroutines over (possibly
// faulty) transports instead of the virtual-clock event engine.
//
// Concurrency layout (strict ownership, like the lossless engine):
//   - one NI goroutine per host: drains the inbox, dedups, ACKs,
//     forwards novel packets to its child edges, reassembles, heartbeats;
//   - one sender goroutine per live tree edge: owns the edge's pending
//     set and retransmission timers, sends serially in sequence order;
//   - the supervisor (RunReliable's goroutine): owns the tree shape, the
//     membership detector, adoption/repair, and termination.
// The only cross-goroutine mutable cell is the global epoch register
// (an atomic), written by the supervisor on view changes and read by
// senders (stamping) and receivers (fencing). All other coordination is
// by channel.

// HostCrash schedules a crash-stop of one host's NI goroutine at a
// wall-clock offset from run start: from At on the NI silently eats every
// frame addressed to it (releasing buffer slots so senders never wedge),
// stops heartbeating and acknowledging, and its outgoing sends vanish. If
// RecoverAt > At the host rejoins at RecoverAt amnesiac — reassembly and
// dedup state lost — and is re-adopted with a full replay; RecoverAt == 0
// means it never comes back.
type HostCrash struct {
	Host      int
	At        time.Duration
	RecoverAt time.Duration
}

// CrashStop reports whether the crash is permanent.
func (c HostCrash) CrashStop() bool { return c.RecoverAt == 0 }

// HeartbeatParams sets the live failure detector's wall-clock timing; the
// detector itself is the pure state machine of internal/membership.
type HeartbeatParams struct {
	Every        time.Duration // heartbeat period per host
	SuspectAfter time.Duration // silence before suspicion
	ConfirmAfter time.Duration // further silence before crash confirmation
	JitterFrac   float64       // per-member timeout widening
}

// ReliableConfig tunes one RunReliable execution.
type ReliableConfig struct {
	// Live carries the base runtime knobs: BufferPackets, LinkLatency and
	// the watchdog Timeout (the liveness backstop of the whole protocol).
	Live Config
	// Faults is the transport chaos plane (zero = lossless edges).
	Faults link.Faults
	// Crashes schedules NI crash-stops; a non-empty schedule arms the
	// membership plane (heartbeats, epochs, fencing, adoption).
	Crashes []HostCrash
	// RTO is the base retransmission timeout; it doubles per attempt up to
	// RTOMax, widened by seeded jitter.
	RTO, RTOMax time.Duration
	// RetryBudget is the maximum retransmissions per (edge incarnation,
	// packet) before the edge is declared dead and its subtree repaired or
	// orphaned.
	RetryBudget int
	// MaxRegrafts bounds adoptions per destination before abandonment.
	MaxRegrafts int
	// Quorum is the minimum completing destinations for a crash-shortened
	// run to count as DeliveredPartial (<= 0: all destinations required).
	Quorum int
	// Heartbeat parameterizes the failure detector; consulted only when
	// Crashes is non-empty.
	Heartbeat HeartbeatParams
}

// DefaultReliableConfig returns wall-clock defaults: RTO comfortably
// above scheduler noise, a detector that confirms in tens of
// milliseconds.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{
		RTO:         25 * time.Millisecond,
		RTOMax:      200 * time.Millisecond,
		RetryBudget: 8,
		MaxRegrafts: 4,
		Heartbeat: HeartbeatParams{
			Every:        5 * time.Millisecond,
			SuspectAfter: 16 * time.Millisecond,
			ConfirmAfter: 12 * time.Millisecond,
			JitterFrac:   0.25,
		},
	}
}

// validate rejects a malformed configuration.
func (cfg ReliableConfig) validate() error {
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	if cfg.RTO <= 0 || cfg.RTOMax < cfg.RTO {
		return fmt.Errorf("live: invalid RTO %v / cap %v", cfg.RTO, cfg.RTOMax)
	}
	if cfg.RetryBudget < 1 || cfg.MaxRegrafts < 1 {
		return fmt.Errorf("live: retry budget %d / regraft bound %d must be >= 1",
			cfg.RetryBudget, cfg.MaxRegrafts)
	}
	seen := map[int]bool{}
	for _, c := range cfg.Crashes {
		if c.Host < 0 || c.At < 0 {
			return fmt.Errorf("live: invalid crash %+v", c)
		}
		if c.RecoverAt != 0 && c.RecoverAt <= c.At {
			return fmt.Errorf("live: host %d recovery %v not after crash %v", c.Host, c.RecoverAt, c.At)
		}
		if seen[c.Host] {
			return fmt.Errorf("live: host %d crashed more than once", c.Host)
		}
		seen[c.Host] = true
	}
	if len(cfg.Crashes) > 0 {
		hb := cfg.Heartbeat
		if hb.Every <= 0 || hb.SuspectAfter <= hb.Every || hb.ConfirmAfter <= 0 {
			return fmt.Errorf("live: invalid heartbeat params %+v", hb)
		}
	}
	return nil
}

// EpochAccept is one novel packet acceptance while the membership plane
// was armed: which epoch the packet traveled under, per receiving host.
type EpochAccept struct {
	Host, Packet, Epoch int
	At                  time.Duration
}

// ReliableResult reports one RunReliable execution. Like the simulator's
// reliable.Result it is returned alongside *CrashError/*DeliveryError, so
// callers can inspect partial outcomes.
type ReliableResult struct {
	// Status is the delivery verdict, with the simulator's semantics.
	Status reliable.Status
	// Hosts holds a record per tree node (Data nil for the root and for
	// destinations that never completed).
	Hosts map[int]*HostRecord
	// Latency is run start to the last completing destination; Wall is run
	// start to teardown.
	Latency, Wall time.Duration
	Packets       int
	// Sends counts data-frame injections; Retransmits of those were repeat
	// attempts. Duplicates were suppressed by receivers, Fenced discarded
	// for stale epochs (data and ACKs).
	Sends, Retransmits, Duplicates, Fenced int
	// Adoptions counts subtree re-grafts (crash adoption, recovery
	// re-admission, and loss/kill repair).
	Adoptions int
	// Epoch is the final membership epoch (0 when never armed); Views the
	// installed epoch-numbered views.
	Epoch int
	Views []membership.View
	// Crashed lists hosts down at teardown; Orphaned destinations left
	// without the full payload, ascending.
	Crashed, Orphaned []int
	// Accepts is the epoch-stamp trace of novel acceptances (armed runs).
	Accepts []EpochAccept
	// Faults snapshots the chaos plane's counters; CrashDrops counts
	// frames eaten by a down NI.
	Faults     link.ChaosStats
	CrashDrops int
}

// rctl is a message to the supervisor.
type rctl struct {
	kind rctlKind
	host int // beat/done: reporting host; exhausted: sending endpoint
	to   int // exhausted: receiving endpoint
	at   time.Duration
	data []byte // done: reassembled payload
}

type rctlKind int

const (
	ctlBeat rctlKind = iota
	ctlDone
	ctlExhausted
	// ctlRejoin: an NI served its first frame after a crash window and wiped
	// its state. The supervisor must re-graft it on a fresh edge with a full
	// replay: its old parent edge holds pre-crash ACKs for packets the crash
	// erased, and plain retransmission would never resend those.
	ctlRejoin
)

// doneRec is one destination's latest completion report.
type doneRec struct {
	at   time.Duration
	data []byte
}

// rrt is the shared state of one reliable run.
type rrt struct {
	cfg   ReliableConfig
	s     Session
	m     int // packets
	k     int // fanout of the original plan, reused by Fig.-11 regrafts
	root  int
	start time.Time
	abort chan struct{}
	ctl   chan rctl
	chaos *link.Chaos
	// epoch is the global fence register: 0 while the membership plane is
	// unarmed, otherwise the latest installed view's epoch. Senders stamp
	// it into outgoing frames; receivers discard frames below it. Only the
	// supervisor stores; the value never decreases.
	epoch atomic.Int64
	wg    sync.WaitGroup

	crashAt, recoverAt map[int]time.Duration

	// Supervisor-owned (no other goroutine touches these after start):
	nis      map[int]*rni
	edges    map[[2]int]*redge
	allEdges []*redge
	parent   map[int]int
	children map[int][]int
	done     map[int]doneRec
	// deadPairs counts exhausted/killed directed transport incarnations;
	// regrafts route around them (root fallback) instead of replaying a
	// dead pair forever.
	deadPairs map[[2]int]int
	regrafts  map[int]int
	abandoned map[int]bool
	det       *membership.Detector
	views     []membership.View
	adoptions int
	rootDown  bool
}

// down reports whether host h is inside its scheduled crash window at
// offset t. It is called from NI and sender goroutines; the schedule maps
// are immutable after start.
func (rt *rrt) down(h int, t time.Duration) bool {
	at, ok := rt.crashAt[h]
	if !ok || t < at {
		return false
	}
	rec, ok := rt.recoverAt[h]
	return !ok || t < rec
}

// us converts a wall offset to the detector's float microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// RunReliable executes one session under the reliable protocol and the
// configured fault plane, blocking until every awaited destination has
// the full payload, the quorum verdict is settled, or the watchdog fires.
// Like reliable.Deliver it returns the result alongside a typed error
// (*reliable.CrashError, *reliable.DeliveryError) on shortfalls; a
// *WatchdogError (nil result) means the protocol itself stalled.
func RunReliable(s Session, cfg ReliableConfig) (*ReliableResult, error) {
	if err := s.validate(0); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Live.BufferPackets < 0 {
		return nil, fmt.Errorf("live: negative buffer bound %d", cfg.Live.BufferPackets)
	}
	if cfg.Live.Timeout <= 0 {
		cfg.Live.Timeout = DefaultTimeout
	}
	chaos, err := link.NewChaos(cfg.Faults)
	if err != nil {
		return nil, err
	}
	for _, c := range cfg.Crashes {
		if !s.Tree.Contains(c.Host) {
			return nil, fmt.Errorf("live: crash of host %d outside the tree", c.Host)
		}
	}

	rt := &rrt{
		cfg:       cfg,
		s:         s,
		m:         len(s.Packets),
		k:         s.Tree.MaxDegree(),
		root:      s.Tree.Root(),
		abort:     make(chan struct{}),
		chaos:     chaos,
		crashAt:   map[int]time.Duration{},
		recoverAt: map[int]time.Duration{},
		nis:       map[int]*rni{},
		edges:     map[[2]int]*redge{},
		parent:    map[int]int{},
		children:  map[int][]int{},
		deadPairs: map[[2]int]int{},
		regrafts:  map[int]int{},
		abandoned: map[int]bool{},
		done:      map[int]doneRec{},
	}
	rt.ctl = make(chan rctl, 8*s.Tree.Size()+64)
	for _, c := range cfg.Crashes {
		rt.crashAt[c.Host] = c.At
		if c.RecoverAt > 0 {
			rt.recoverAt[c.Host] = c.RecoverAt
		}
	}

	armed := len(cfg.Crashes) > 0
	if armed {
		hb := cfg.Heartbeat
		det, err := membership.New(membership.Config{
			HeartbeatEvery: us(hb.Every),
			SuspectAfter:   us(hb.SuspectAfter),
			ConfirmAfter:   us(hb.ConfirmAfter),
			JitterFrac:     hb.JitterFrac,
			Seed:           cfg.Faults.Seed ^ 0xD1B5_4A32_D192_ED03,
		}, s.Tree.Nodes(), 0)
		if err != nil {
			return nil, err
		}
		rt.det = det
		rt.epoch.Store(int64(det.Epoch()))
		rt.views = append(rt.views, det.View())
	}

	if err := rt.buildReliableFabric(); err != nil {
		return nil, err
	}
	rt.start = time.Now()
	chaos.Start(rt.start)
	for _, n := range rt.nis {
		rt.wg.Add(1)
		go func(n *rni) { defer rt.wg.Done(); n.run() }(n)
	}
	for _, e := range rt.allEdges {
		rt.wg.Add(1)
		go func(e *redge) { defer rt.wg.Done(); e.run() }(e)
	}
	return rt.supervise()
}

// buildReliableFabric constructs NIs for every tree node and sender
// goroutines for every tree edge. The root's NI starts holding all m
// packets, so edge seeding is uniform: every NI replays its held packets
// into a newly attached child edge, packet-major like FPFS injection.
// With Live.Network set, every NI is attached to the network before any
// edge is dialed; chaos decoration wraps the dialed transports the same
// way it wraps in-process links.
func (rt *rrt) buildReliableFabric() error {
	slots := rt.cfg.Live.BufferPackets
	for _, v := range rt.s.Tree.Nodes() {
		capacity := 4*rt.m + 16
		if slots > 0 {
			capacity = slots
		}
		n := &rni{
			rt:      rt,
			host:    v,
			inbox:   link.NewInbox(v, capacity, slots),
			ctl:     make(chan niCtl, 16),
			parents: map[int]*redge{},
			got:     make([]bool, rt.m),
			ackRNG:  rt.chaos.AckRNG(v),
		}
		if v == rt.root {
			for j := range n.got {
				n.got[j] = true
			}
			n.completed = true
		} else {
			n.reasm = message.NewReassembler()
		}
		rt.nis[v] = n
		rt.parent[v] = -1
	}
	if nw := rt.cfg.Live.Network; nw != nil {
		attached := make([]int, 0, len(rt.nis))
		for v, n := range rt.nis {
			if err := nw.Attach(v, n.inbox); err != nil {
				for _, a := range attached {
					nw.Detach(a)
				}
				return fmt.Errorf("live: attach host %d: %w", v, err)
			}
			attached = append(attached, v)
		}
	}
	for _, e := range rt.s.Tree.Edges() {
		rt.newEdge(e.Parent, e.Child, true)
	}
	// Initial children are wired statically (the NI goroutines have not
	// started), sorted for a deterministic packet-major seeding order.
	for _, n := range rt.nis {
		sort.Slice(n.childEdges, func(i, j int) bool { return n.childEdges[i].to < n.childEdges[j].to })
	}
	return nil
}

// newEdge creates one directed edge incarnation: transport (chaos-
// wrapped), sender goroutine state, and supervisor bookkeeping. static
// edges are wired into the NI structs directly (pre-start); dynamic ones
// are announced over NI control channels by the caller.
func (rt *rrt) newEdge(a, b int, static bool) *redge {
	var base link.Transport
	if nw := rt.cfg.Live.Network; nw != nil {
		t, err := nw.Dial(a, b)
		if err != nil {
			// A mid-run dial failure (regraft on a closing network) is an
			// instantly dead incarnation: the sender goroutine hits the
			// error on its first send and the edge-exhaustion machinery —
			// built for exactly this — routes around it.
			t = deadTransport{from: a, to: b, err: err}
		}
		base = t
	} else {
		base = link.New(a, rt.nis[b].inbox, rt.cfg.Live.LinkLatency)
	}
	e := newRedge(rt, a, b, rt.chaos.Wrap(base))
	rt.edges[[2]int{a, b}] = e
	rt.allEdges = append(rt.allEdges, e)
	rt.parent[b] = a
	rt.children[a] = append(rt.children[a], b)
	if static {
		rt.nis[a].childEdges = append(rt.nis[a].childEdges, e)
		rt.nis[b].parents[a] = e
	}
	return e
}

// deadTransport is an edge whose dial failed: every Send reports the
// dial error, so the retransmission plane retires it like any other
// dead link.
type deadTransport struct {
	from, to int
	err      error
}

func (d deadTransport) From() int { return d.from }
func (d deadTransport) To() int   { return d.to }
func (d deadTransport) Send([]byte, <-chan struct{}) error {
	return fmt.Errorf("live: edge %d->%d never dialed: %w", d.from, d.to, d.err)
}

// supervise is the supervisor loop: collect heartbeats, completions and
// edge exhaustions; advance the failure detector; adopt, repair, or
// abandon; finish on an empty wait set, root crash, or watchdog expiry.
func (rt *rrt) supervise() (*ReliableResult, error) {
	// Destinations awaited for termination: every destination except those
	// scheduled to crash-stop (they can never complete; recovery-scheduled
	// hosts are awaited — the protocol must replay them to completion).
	wait := map[int]bool{}
	for _, v := range rt.s.Tree.Nodes() {
		if v == rt.root {
			continue
		}
		if _, crashed := rt.crashAt[v]; crashed {
			if _, rec := rt.recoverAt[v]; !rec {
				continue
			}
		}
		wait[v] = true
	}
	done := rt.done

	watchdog := time.NewTimer(rt.cfg.Live.Timeout)
	defer watchdog.Stop()
	detTimer := time.NewTimer(time.Hour)
	defer detTimer.Stop()

	// creditRoot marks the root alive right before any detector judgment.
	// The supervisor is the root's protocol brain: if it is running this
	// code the root is alive (unless its crash is actually scheduled).
	// Witness skips the silence judgment Heartbeat would apply first — on a
	// loaded box a scheduling burst must not confirm the root and fail the
	// whole run spuriously.
	creditRoot := func() {
		now := time.Since(rt.start)
		if !rt.down(rt.root, now) {
			rt.handleEvents(rt.det.Witness(rt.root, us(now)))
		}
	}

	handleCtl := func(c rctl) {
		switch c.kind {
		case ctlBeat:
			if rt.det != nil {
				creditRoot()
				if c.host != rt.root { // the credit already counted, at a fresher instant
					rt.handleEvents(rt.det.Heartbeat(c.host, us(c.at)))
				}
			}
		case ctlDone:
			prev, seen := done[c.host]
			if !seen || c.at > prev.at {
				done[c.host] = doneRec{at: c.at, data: c.data}
			}
			delete(wait, c.host)
		case ctlExhausted:
			rt.exhausted(c.host, c.to)
		case ctlRejoin:
			// If the detector already confirmed the crash, its beat-driven
			// Rejoined event re-admits the host with a fresh subtree; grafting
			// here too would just double the churn.
			if rt.det != nil && rt.det.Phase(c.host) != membership.Crashed {
				rt.graft(rt.liveAncestor(c.host), []int{c.host})
			}
		}
	}

	timedOut := false
	for len(wait) > 0 && !rt.rootDown {
		// (Re)arm the detector timer at its next deadline.
		wake := time.Hour
		if rt.det != nil {
			if dl, ok := rt.det.NextDeadline(); ok {
				wake = time.Duration(dl*float64(time.Microsecond)) - time.Since(rt.start)
				if wake < 0 {
					wake = 0
				}
			}
		}
		if !detTimer.Stop() {
			select {
			case <-detTimer.C:
			default:
			}
		}
		detTimer.Reset(wake)

		select {
		case c := <-rt.ctl:
			handleCtl(c)
		case <-detTimer.C:
			if rt.det != nil {
				// Queued heartbeats must land before silence is judged: a
				// scheduling burst (GC, single-CPU contention) can expire the
				// timer with fresh beats still in the channel, and advancing
				// first would confirm hosts that are provably alive.
				for drained := false; !drained; {
					select {
					case c := <-rt.ctl:
						handleCtl(c)
					default:
						drained = true
					}
				}
				creditRoot()
				rt.handleEvents(rt.det.Advance(us(time.Since(rt.start))))
			}
		case <-watchdog.C:
			timedOut = true
		}
		if timedOut {
			break
		}
		// Adoption may have abandoned awaited destinations.
		for v := range wait {
			if rt.abandoned[v] {
				delete(wait, v)
			}
		}
	}
	wall := time.Since(rt.start)
	close(rt.abort)
	rt.wg.Wait()
	if nw := rt.cfg.Live.Network; nw != nil {
		// The NIs and edge senders are gone; detaching stops the receive
		// pumps and unparks any deliverer still blocked on an inbox gate.
		for v := range rt.nis {
			nw.Detach(v)
		}
	}
	// Completions that raced the verdict still count.
	for {
		select {
		case c := <-rt.ctl:
			if c.kind == ctlDone {
				if prev, seen := done[c.host]; !seen || c.at > prev.at {
					done[c.host] = doneRec{at: c.at, data: c.data}
				}
				delete(wait, c.host)
			}
			continue
		default:
		}
		break
	}

	if timedOut {
		e := &WatchdogError{
			Timeout:  rt.cfg.Live.Timeout,
			Missing:  map[int][]int{},
			Progress: map[int][]DestProgress{},
		}
		for _, v := range rt.s.Tree.Nodes() {
			if v == rt.root {
				continue
			}
			if _, ok := done[v]; ok {
				continue
			}
			e.Missing[0] = append(e.Missing[0], v)
		}
		sort.Ints(e.Missing[0])
		for _, v := range e.Missing[0] {
			held := 0
			for _, g := range rt.nis[v].got {
				if g {
					held++
				}
			}
			e.Progress[0] = append(e.Progress[0], DestProgress{Host: v, Received: held, Expected: rt.m})
		}
		return nil, e
	}

	// Assemble the result (all goroutines quiescent: reads are race-free).
	res := &ReliableResult{
		Status:    reliable.Delivered,
		Hosts:     map[int]*HostRecord{},
		Wall:      wall,
		Packets:   rt.m,
		Faults:    rt.chaos.Stats(),
		Views:     rt.views,
		Adoptions: rt.adoptions,
	}
	if rt.det != nil {
		res.Epoch = rt.det.Epoch()
	}
	sendsBy := map[int]int{}
	for _, e := range rt.allEdges {
		res.Sends += e.es.Sends()
		res.Retransmits += e.es.Retransmits()
		res.Fenced += e.es.Fenced()
		sendsBy[e.from] += e.es.Sends()
	}
	dests := 0
	for _, v := range rt.s.Tree.Nodes() {
		n := rt.nis[v]
		rec := &HostRecord{
			Host:     v,
			Arrivals: n.arrivals,
			Sends:    sendsBy[v],
			Recvs:    n.recvs,
		}
		res.Duplicates += n.dups
		res.Fenced += n.fenced
		res.CrashDrops += n.crashDrops
		res.Accepts = append(res.Accepts, n.accepts...)
		if v != rt.root {
			dests++
			if d, ok := done[v]; ok {
				rec.Data = d.data
				rec.DoneAt = d.at
				if d.at > res.Latency {
					res.Latency = d.at
				}
			} else {
				res.Orphaned = append(res.Orphaned, v)
			}
		}
		res.Hosts[v] = rec
	}
	sort.Ints(res.Orphaned)
	// Stable: accepts arrive grouped per host in goroutine order, and ties
	// on At must not reorder a host's own chronology (epoch monotonicity
	// per host is an invariant the harness checks).
	sort.SliceStable(res.Accepts, func(i, j int) bool { return res.Accepts[i].At < res.Accepts[j].At })
	for h := range rt.crashAt {
		if rt.down(h, wall) {
			res.Crashed = append(res.Crashed, h)
		}
	}
	sort.Ints(res.Crashed)

	delivered := dests - len(res.Orphaned)
	quorum := rt.cfg.Quorum
	if quorum <= 0 || quorum > dests {
		quorum = dests
	}
	switch {
	case rt.rootDown:
		res.Status = reliable.Failed
		return res, &reliable.CrashError{
			Crashed: res.Crashed, Undelivered: res.Orphaned,
			Delivered: delivered, Quorum: quorum, Epoch: res.Epoch, RootCrashed: true,
		}
	case len(res.Orphaned) == 0:
		res.Status = reliable.Delivered
		return res, nil
	case rt.det == nil:
		res.Status = reliable.Failed
		return res, &reliable.DeliveryError{Orphaned: res.Orphaned}
	case delivered >= quorum:
		res.Status = reliable.DeliveredPartial
		return res, nil
	default:
		res.Status = reliable.Failed
		return res, &reliable.CrashError{
			Crashed: res.Crashed, Undelivered: res.Orphaned,
			Delivered: delivered, Quorum: quorum, Epoch: res.Epoch,
		}
	}
}

// handleEvents folds a batch of detector events into the runtime: epoch
// register, view log, adoption on confirmation, re-admission on rejoin.
func (rt *rrt) handleEvents(evs []membership.Event) {
	for _, ev := range evs {
		switch ev.Kind {
		case membership.Confirmed:
			rt.epoch.Store(int64(ev.Epoch))
			if ev.Host == rt.root {
				rt.rootDown = true
				return
			}
			rt.adoptAfterConfirm(ev.Host)
		case membership.Rejoined:
			rt.epoch.Store(int64(ev.Epoch))
			// Re-admit under the root with a full replay: the rejoined host
			// is amnesiac (or was falsely confirmed and needs a live parent
			// again either way).
			rt.graft(rt.root, []int{ev.Host})
		}
	}
	if len(rt.views) > 0 && rt.det.Epoch() > rt.views[len(rt.views)-1].Epoch {
		rt.views = append(rt.views, rt.det.View())
	}
}

// adoptAfterConfirm handles a confirmed crash: the dead host's edges are
// cancelled and its incomplete live descendants re-grafted under its
// nearest live ancestor via the Fig.-11 construction.
func (rt *rrt) adoptAfterConfirm(h int) {
	adopter := rt.liveAncestor(h)
	orphans := rt.incompleteSubtree(h)
	rt.killEdgesInto(h)
	rt.killEdgesOutOf(h)
	var keep []int
	now := time.Since(rt.start)
	for _, v := range orphans {
		if v == h || rt.down(v, now) || rt.abandoned[v] {
			continue // the dead host itself, and down descendants, rejoin later
		}
		keep = append(keep, v)
	}
	rt.graft(adopter, keep)
}

// liveAncestor walks up from h to the nearest ancestor still in the
// current view (the root is always a member unless rootDown fired).
func (rt *rrt) liveAncestor(h int) int {
	members := map[int]bool{}
	for _, m := range rt.det.View().Members {
		members[m] = true
	}
	v := rt.parent[h]
	for v >= 0 && v != rt.root && !members[v] {
		v = rt.parent[v]
	}
	if v < 0 {
		return rt.root
	}
	return v
}

// incompleteSubtree collects the nodes in the subtree currently rooted at
// h, h included, preorder over the supervisor's tree shape.
func (rt *rrt) incompleteSubtree(h int) []int {
	var out []int
	var walk func(u int)
	walk = func(u int) {
		out = append(out, u)
		for _, c := range rt.children[u] {
			walk(c)
		}
	}
	walk(h)
	return out
}

// killEdgesInto / killEdgesOutOf retire edge incarnations around a dead
// or re-parented host. Cancelled senders exit at their next select; the
// receiving NI keeps a stale ack route harmlessly (the channel is
// buffered and unread).
func (rt *rrt) killEdgesInto(h int) {
	if p := rt.parent[h]; p >= 0 {
		rt.killEdge(p, h)
	}
}

func (rt *rrt) killEdgesOutOf(h int) {
	for _, c := range append([]int(nil), rt.children[h]...) {
		rt.killEdge(h, c)
	}
}

// killEdge retires one live edge incarnation.
func (rt *rrt) killEdge(a, b int) {
	key := [2]int{a, b}
	e, ok := rt.edges[key]
	if !ok {
		return
	}
	delete(rt.edges, key)
	e.es.Cancel()
	for i, c := range rt.children[a] {
		if c == b {
			rt.children[a] = append(rt.children[a][:i], rt.children[a][i+1:]...)
			break
		}
	}
	rt.parent[b] = -1
	rt.niCtl(a, niCtl{kind: niDelChild, child: b})
}

// graft re-parents the orphans onto a fresh k-binomial subtree under
// adopter — the paper's Fig.-11 contention-free construction over the
// survivors (ascending order stands in for the routed chain order; the
// live fabric has no switch geometry). Each new parent replays the
// packets it already holds into the fresh edge; later arrivals forward
// through the normal receive path. Edges that would reuse a dead
// transport pair fall back to a direct root edge, and a destination
// re-grafted too often is abandoned.
func (rt *rrt) graft(adopter int, orphans []int) {
	var keep []int
	for _, v := range orphans {
		if v == adopter || rt.abandoned[v] {
			continue
		}
		rt.regrafts[v]++
		if rt.regrafts[v] > rt.cfg.MaxRegrafts {
			rt.abandon(v)
			continue
		}
		rt.killEdgesInto(v)
		keep = append(keep, v)
	}
	if len(keep) == 0 {
		return
	}
	sort.Ints(keep)
	sub := tree.KBinomial(append([]int{adopter}, keep...), rt.k)
	for _, e := range sub.Edges() {
		a, b := e.Parent, e.Child
		if rt.deadPairs[[2]int{a, b}] > 0 {
			if a == rt.root || rt.deadPairs[[2]int{rt.root, b}] > 0 {
				rt.abandon(b)
				continue
			}
			a = rt.root
		}
		if _, dup := rt.edges[[2]int{a, b}]; dup {
			continue
		}
		edge := rt.newEdge(a, b, false)
		rt.wg.Add(1)
		go func(e *redge) { defer rt.wg.Done(); e.run() }(edge)
		// Parent-route first so the child can ACK the very first replayed
		// frame; then attach the child to the parent NI, which replays its
		// held packets into the new edge.
		rt.niCtl(b, niCtl{kind: niSetParent, from: a, edge: edge})
		rt.niCtl(a, niCtl{kind: niAddChild, child: b, edge: edge})
	}
	rt.adoptions++
}

// abandon gives up on destination v permanently.
func (rt *rrt) abandon(v int) {
	if rt.abandoned[v] {
		return
	}
	rt.abandoned[v] = true
	rt.killEdgesInto(v)
	rt.killEdgesOutOf(v)
}

// exhausted handles an edge whose retry budget ran out: the incarnation
// is retired and its subtree repaired under the sending endpoint (or the
// detector's adoption path, if the receiver is scheduled-down and the
// membership plane will confirm it shortly).
func (rt *rrt) exhausted(a, b int) {
	rt.deadPairs[[2]int{a, b}]++
	rt.killEdge(a, b)
	now := time.Since(rt.start)
	if rt.down(b, now) && rt.det != nil {
		return // the failure detector owns crashed-host adoption
	}
	var orphans []int
	for _, v := range rt.incompleteSubtree(b) {
		if rt.down(v, now) || rt.abandoned[v] {
			continue
		}
		if _, ok := rt.done[v]; ok && len(rt.children[v]) == 0 {
			continue // completed leaf: nothing to repair
		}
		orphans = append(orphans, v)
	}
	adopter := a
	if rt.det != nil && rt.down(a, now) {
		adopter = rt.liveAncestor(a)
	}
	rt.graft(adopter, orphans)
}

// niCtl delivers a control message to one NI, abort-aware.
func (rt *rrt) niCtl(host int, c niCtl) {
	select {
	case rt.nis[host].ctl <- c:
	case <-rt.abort:
	}
}
