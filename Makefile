GO ?= go

.PHONY: all build test race vet fmt check mcastcheck ci figures clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The reliable-delivery and concurrent-session tests exercise shared NIs
# from multiple goroutines; always run them under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt race

# Differential testing harness (internal/check): a fixed-seed sweep large
# enough to be meaningful but small enough for CI. Failures print shrunk
# reproducers with replay tokens; see DESIGN.md §8.
mcastcheck:
	$(GO) run ./cmd/mcastcheck -n 500 -seed 1

ci: check mcastcheck

figures:
	$(GO) run ./cmd/figures -out figures

clean:
	$(GO) clean ./...
