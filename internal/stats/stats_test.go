package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 || s.CI95() != 0 {
		t.Error("empty summary not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %f, want 5", s.Mean())
	}
	// Sample std of this classic set: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("std = %f, want %f", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %f/%f", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Std() != 0 || s.Min() != 42 || s.Max() != 42 || s.CI95() != 0 {
		t.Error("single-observation summary wrong")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		var s Summary
		sum := 0.0
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				ok = false
				break
			}
			s.Add(x)
			sum += x
		}
		if !ok || len(xs) == 0 {
			return true
		}
		naive := sum / float64(len(xs))
		scale := math.Max(1, math.Abs(naive))
		return math.Abs(s.Mean()-naive)/scale < 1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("latency")
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(1, 14)
	pts := s.Points()
	if len(pts) != 2 || pts[0].X != 1 || pts[1].X != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Summary.N() != 2 || math.Abs(pts[0].Summary.Mean()-12) > 1e-12 {
		t.Errorf("x=1 summary wrong: %+v", pts[0].Summary)
	}
	if sum, ok := s.At(2); !ok || sum.Mean() != 20 {
		t.Error("At(2) wrong")
	}
	if _, ok := s.At(3); ok {
		t.Error("At(3) should be absent")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "m", "binomial", "k-binomial")
	tb.AddRow("1", "32.4", "32.4")
	tb.AddFloats("2", 1, 64.8, 43.2)
	out := tb.String()
	if !strings.Contains(out, "Fig X") {
		t.Error("caption missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // caption, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "binomial") || !strings.Contains(lines[4], "43.2") {
		t.Errorf("table content wrong:\n%s", out)
	}
	// Columns aligned: header and row share the column start offsets.
	if strings.Index(lines[1], "k-binomial") != strings.Index(lines[4], "43.2") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableRowWidthPanic(t *testing.T) {
	tb := NewTable("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong row width")
		}
	}()
	tb.AddRow("only one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("cap", "a", "b")
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `quote"inside`)
	got := tb.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"quote\"\"inside\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.N() != 100 || math.Abs(s.Mean()-50.5) > 1e-12 {
		t.Fatalf("N=%d mean=%f", s.N(), s.Mean())
	}
	if m := s.Median(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("median = %f, want 50.5", m)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %f", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("q1 = %f", q)
	}
	if p := s.P95(); math.Abs(p-95.05) > 1e-9 {
		t.Errorf("p95 = %f, want 95.05", p)
	}
	// Adding after sorting still works.
	s.Add(1000)
	if q := s.Quantile(1); q != 1000 {
		t.Errorf("q1 after add = %f", q)
	}
}

func TestSampleSingleAndPanics(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Median() != 7 || s.Quantile(0.3) != 7 {
		t.Error("single-element quantiles wrong")
	}
	var empty Sample
	for i, f := range []func(){
		func() { empty.Quantile(0.5) },
		func() { s.Quantile(-0.1) },
		func() { s.Quantile(1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	if empty.Mean() != 0 {
		t.Error("empty mean")
	}
}
