package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ktree"
	"repro/internal/message"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "pktsize",
		Title: "Extension: packet-size trade-off for a fixed message (cf. De Coster et al. [2])",
		Run:   runPktSize,
	})
}

// runPktSize fixes the message at 2 KB of payload and sweeps the network
// packet size. Smaller packets pipeline more finely (more, cheaper
// stages) but pay the wire-format header on every fragment and a fixed
// per-packet NI overhead; larger packets amortize overheads but
// coarsen the pipeline. The paper takes the packet size as fixed by the
// network (Section 2.1) and optimizes the tree instead; this experiment
// shows what that fixed choice costs across the design space, the
// question its reference [2] optimized in software.
func runPktSize(cfg Config) *Result {
	const msgBytes = 2048
	sys := systems(cfg)
	tb := stats.NewTable(
		fmt.Sprintf("Latency (us) delivering %d payload bytes to 31 dests vs network packet size", msgBytes),
		"pkt bytes", "payload/pkt", "m", "optimal k", "latency (us)")
	for _, pktBytes := range []int{32, 64, 128, 256, 512} {
		payload := pktBytes - message.HeaderSize
		m := (msgBytes + payload - 1) / payload
		params := cfg.Params
		params.PacketBytes = pktBytes // wire time scales with the packet
		var lat stats.Summary
		for t, s := range sys {
			for i := 0; i < cfg.Sweep.Trials; i++ {
				rng := cfg.Sweep.TrialRNG(t, i)
				set := workload.DestSet(rng, s.Net.NumHosts(), 31)
				spec := core.Spec{Source: set[0], Dests: set[1:], Packets: m, Policy: core.OptimalTree}
				lat.Add(s.Latency(spec, params))
			}
		}
		k, _ := ktree.OptimalK(32, m)
		tb.AddRow(fmt.Sprintf("%d", pktBytes), fmt.Sprintf("%d", payload),
			fmt.Sprintf("%d", m), fmt.Sprintf("%d", k), fmt.Sprintf("%.1f", lat.Mean()))
	}
	return &Result{
		ID: "pktsize", Title: "packet size trade-off", Tables: []*stats.Table{tb},
		Notes: []string{
			"tiny packets multiply the fixed per-packet NI overhead t_ns: 32B packets are ~6x slower than 512B",
			"gains flatten past ~256B: t_ns amortizes away and wire time starts to grow with the packet",
		},
	}
}
