// Command topogen generates a random irregular switch topology (the
// paper's 64-host / 16-switch testbed by default) and emits it as JSON or
// Graphviz DOT.
//
// Usage:
//
//	topogen [-seed 1] [-hosts 64] [-switches 16] [-ports 8] [-format json|dot]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	hosts := flag.Int("hosts", 64, "number of hosts")
	switches := flag.Int("switches", 16, "number of switches")
	ports := flag.Int("ports", 8, "ports per switch")
	format := flag.String("format", "json", "output format: json or dot")
	stats := flag.Bool("stats", false, "print topology statistics to stderr")
	flag.Parse()

	cfg := topology.IrregularConfig{Hosts: *hosts, Switches: *switches, Ports: *ports}
	net := topology.Irregular(cfg, workload.NewRNG(*seed))

	switch *format {
	case "json":
		data, err := json.MarshalIndent(net, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	case "dot":
		fmt.Print(net.DOT())
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown format %q\n", *format)
		os.Exit(1)
	}

	if *stats {
		r := routing.NewUpDown(net)
		maxLevel := 0
		for s := 0; s < net.NumSwitches(); s++ {
			if l := r.Level(s); l > maxLevel {
				maxLevel = l
			}
		}
		fmt.Fprintf(os.Stderr, "topology: %s\n", net.Summary())
		fmt.Fprintf(os.Stderr, "up*/down* root: switch %d, tree depth %d\n", r.Root(), maxLevel)
	}
}
