package experiments

import (
	"fmt"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/ktree"
	"repro/internal/ordering"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/stepsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Ablation experiments go beyond the paper's figures: they isolate the
// design choices DESIGN.md calls out (base ordering, fanout bound, NI
// overhead balance, model-vs-measured k selection) and quantify what each
// contributes on the paper's testbed.

func init() {
	register(Experiment{
		ID:    "abl-ordering",
		Title: "Ablation: base ordering (identity vs CCO vs POC) on latency and conflicts",
		Run:   runAblOrdering,
	})
	register(Experiment{
		ID:    "abl-k",
		Title: "Ablation: measured latency vs fixed fanout bound k (the Theorem 3 U-shape)",
		Run:   runAblK,
	})
	register(Experiment{
		ID:    "abl-ni",
		Title: "Ablation: NI send overhead t_ns sensitivity of the k-binomial speedup",
		Run:   runAblNI,
	})
	register(Experiment{
		ID:    "abl-plan",
		Title: "Ablation: model-driven k (Theorem 3) vs measured-k planning",
		Run:   runAblPlan,
	})
	register(Experiment{
		ID:    "collectives",
		Title: "Extension: collective operations built on k-binomial trees",
		Run:   runCollectives,
	})
}

// orderingVariants returns, per sweep system, the three base orderings
// under study, sharing the system's router and tables.
func orderingVariants(s *core.System) map[string]*core.System {
	ud, ok := s.Router.(*routing.UpDown)
	if !ok {
		panic("experiments: ordering ablation needs an up*/down* system")
	}
	return map[string]*core.System{
		"identity": s.WithOrdering(ordering.Identity(s.Net.NumHosts())),
		"cco":      s, // CCO is the default
		"poc":      s.WithOrdering(ordering.POC(ud)),
	}
}

func runAblOrdering(cfg Config) *Result {
	sys := systems(cfg)
	variants := make([]map[string]*core.System, len(sys))
	for i, s := range sys {
		variants[i] = orderingVariants(s)
	}
	kinds := []string{"identity", "cco", "poc"}
	tb := stats.NewTable("Mean multicast latency (us) / same-step conflicts by base ordering; 31 dests, k=2 trees",
		"m", "identity", "conf", "cco", "conf", "poc", "conf")
	for _, m := range []int{2, 8} {
		row := []float64{}
		for _, kind := range kinds {
			var lat, conf stats.Summary
			for t := range sys {
				v := variants[t][kind]
				for i := 0; i < cfg.Sweep.Trials; i++ {
					rng := cfg.Sweep.TrialRNG(t, i)
					set := workload.DestSet(rng, v.Net.NumHosts(), 31)
					spec := core.Spec{Source: set[0], Dests: set[1:], Packets: m,
						Policy: core.FixedKTree, K: 2}
					plan := v.Plan(spec)
					lat.Add(v.Simulate(plan, cfg.Params, stepsim.FPFS).Latency)
					conf.Add(float64(v.Conflicts(plan, stepsim.FPFS)))
				}
			}
			row = append(row, lat.Mean(), conf.Mean())
		}
		tb.AddFloats(fmt.Sprintf("%d", m), 2, row...)
	}
	return &Result{
		ID: "abl-ordering", Title: "ordering ablation", Tables: []*stats.Table{tb},
		Notes: []string{"CCO and POC should both beat the uninformed identity ordering in conflicts"},
	}
}

func runAblK(cfg Config) *Result {
	sys := systems(cfg)
	header := []string{"k"}
	ms := []int{1, 8, 32}
	for _, m := range ms {
		header = append(header, fmt.Sprintf("m=%d", m))
	}
	tb := stats.NewTable("Mean multicast latency (us) vs fixed fanout bound; 47 dests", header...)
	type cell struct{ k, m int }
	means := map[cell]float64{}
	for k := 1; k <= 6; k++ {
		row := []float64{}
		for _, m := range ms {
			var lat stats.Summary
			for t, s := range sys {
				for i := 0; i < cfg.Sweep.Trials; i++ {
					rng := cfg.Sweep.TrialRNG(t, i)
					set := workload.DestSet(rng, s.Net.NumHosts(), 47)
					spec := core.Spec{Source: set[0], Dests: set[1:], Packets: m,
						Policy: core.FixedKTree, K: k}
					lat.Add(s.Latency(spec, cfg.Params))
				}
			}
			means[cell{k, m}] = lat.Mean()
			row = append(row, lat.Mean())
		}
		tb.AddFloats(fmt.Sprintf("%d", k), 1, row...)
	}
	notes := []string{}
	for _, m := range ms {
		bestK, bestV := 0, 0.0
		for k := 1; k <= 6; k++ {
			if v := means[cell{k, m}]; bestK == 0 || v < bestV {
				bestK, bestV = k, v
			}
		}
		model, _ := ktree.OptimalK(48, m)
		notes = append(notes, fmt.Sprintf("m=%d: measured-best k=%d, Theorem 3 k=%d", m, bestK, model))
	}
	return &Result{ID: "abl-k", Title: "fanout-bound sweep", Tables: []*stats.Table{tb}, Notes: notes}
}

func runAblNI(cfg Config) *Result {
	sys := systems(cfg)
	tb := stats.NewTable("Binomial/k-binomial speedup vs NI send overhead t_ns; 47 dests, m=16",
		"t_ns (us)", "binomial (us)", "k-binomial (us)", "speedup")
	for _, tns := range []float64{1.0, 3.0, 6.0, 12.0} {
		params := cfg.Params
		params.TNISend = tns
		var bin, kbin stats.Summary
		for t, s := range sys {
			for i := 0; i < cfg.Sweep.Trials; i++ {
				rng := cfg.Sweep.TrialRNG(t, i)
				set := workload.DestSet(rng, s.Net.NumHosts(), 47)
				spec := core.Spec{Source: set[0], Dests: set[1:], Packets: 16}
				spec.Policy = core.BinomialTree
				bin.Add(s.Latency(spec, params))
				spec.Policy = core.OptimalTree
				kbin.Add(s.Latency(spec, params))
			}
		}
		tb.AddFloats(fmt.Sprintf("%.1f", tns), 2, bin.Mean(), kbin.Mean(), bin.Mean()/kbin.Mean())
	}
	return &Result{
		ID: "abl-ni", Title: "NI overhead sensitivity", Tables: []*stats.Table{tb},
		Notes: []string{
			"the k-binomial advantage rests on the per-copy NI injection cost: it grows with t_ns",
			"as t_ns -> 0 the pipeline interval vanishes and tree choice matters less",
		},
	}
}

func runAblPlan(cfg Config) *Result {
	sys := systems(cfg)
	tb := stats.NewTable("Theorem 3 model-k vs measured-k planning; 15 dests (transition band)",
		"m", "model k", "model latency", "measured k", "measured latency", "gain %")
	for _, m := range []int{8, 10, 12, 14, 16, 24} {
		var modelLat, measLat stats.Summary
		var modelK, measK stats.Summary
		for t, s := range sys {
			for i := 0; i < cfg.Sweep.Trials; i++ {
				rng := cfg.Sweep.TrialRNG(t, i)
				set := workload.DestSet(rng, s.Net.NumHosts(), 15)
				spec := core.Spec{Source: set[0], Dests: set[1:], Packets: m, Policy: core.OptimalTree}
				plan := s.Plan(spec)
				modelK.Add(float64(plan.K))
				modelLat.Add(s.Simulate(plan, cfg.Params, stepsim.FPFS).Latency)
				best, lat := s.PlanMeasured(spec, cfg.Params)
				measK.Add(float64(best.K))
				measLat.Add(lat)
			}
		}
		gain := (modelLat.Mean() - measLat.Mean()) / modelLat.Mean() * 100
		tb.AddFloats(fmt.Sprintf("%d", m), 2,
			modelK.Mean(), modelLat.Mean(), measK.Mean(), measLat.Mean(), gain)
	}
	return &Result{
		ID: "abl-plan", Title: "model vs measured k", Tables: []*stats.Table{tb},
		Notes: []string{
			"the Theorem 3 objective counts steps but not route lengths; around its",
			"binomial-to-linear crossover the measured-k planner recovers the loss",
		},
	}
}

func runCollectives(cfg Config) *Result {
	// A single representative system suffices: the point is relative cost.
	s := systems(cfg)[0]
	rng := workload.NewRNG(0xC0)
	tb := stats.NewTable("Collective operations over k-binomial trees; 31 dests, mean of 5 sets (us)",
		"op", "m=1", "m=4", "m=16")
	ops := []struct {
		name string
		run  func(spec core.Spec) float64
	}{
		{"broadcast-tree multicast", func(spec core.Spec) float64 {
			return collectives.Multicast(s, spec, cfg.Params).Latency
		}},
		{"scatter", func(spec core.Spec) float64 {
			return collectives.Scatter(s, spec, cfg.Params).Latency
		}},
		{"gather", func(spec core.Spec) float64 {
			return collectives.Gather(s, spec, cfg.Params).Latency
		}},
		{"reduce", func(spec core.Spec) float64 {
			return collectives.Reduce(s, spec, collectives.ReduceParams{Sim: cfg.Params}).Latency
		}},
		{"barrier", func(spec core.Spec) float64 {
			return collectives.Barrier(s, spec, cfg.Params).Latency
		}},
	}
	sets := make([][]int, 5)
	for i := range sets {
		sets[i] = workload.DestSet(rng, s.Net.NumHosts(), 31)
	}
	for _, op := range ops {
		row := []float64{}
		for _, m := range []int{1, 4, 16} {
			var lat stats.Summary
			for _, set := range sets {
				spec := core.Spec{Source: set[0], Dests: set[1:], Packets: m, Policy: core.OptimalTree}
				lat.Add(op.run(spec))
			}
			row = append(row, lat.Mean())
		}
		tb.AddFloats(op.name, 1, row...)
	}
	return &Result{
		ID: "collectives", Title: "collectives on k-binomial trees", Tables: []*stats.Table{tb},
		Notes: []string{
			"scatter/gather move n distinct messages through the source NI: latency scales with n*m",
			"reduce pipelines packet-wise up the reversed tree, mirroring FPFS multicast",
		},
	}
}

func init() {
	register(Experiment{
		ID:    "abl-cluster",
		Title: "Ablation: clustered vs spread destination sets",
		Run:   runAblCluster,
	})
}

// runAblCluster compares uniformly spread destination sets with sets
// clustered on few switches. Clustered multicasts ride short routes and
// CCO keeps their chains switch-local, so they should complete faster and
// with less channel contention.
func runAblCluster(cfg Config) *Result {
	sys := systems(cfg)
	tb := stats.NewTable("Mean optimal-tree latency (us) / channel wait (us): spread vs switch-clustered dests; m=8",
		"dests", "spread", "wait", "clustered", "wait")
	for _, dc := range []int{7, 15, 31} {
		row := []float64{}
		for _, clustered := range []bool{false, true} {
			var lat, wait stats.Summary
			for t, s := range sys {
				sw := s.Net
				for i := 0; i < cfg.Sweep.Trials; i++ {
					rng := cfg.Sweep.TrialRNG(t, i)
					var set []int
					if clustered {
						set = workload.ClusteredDestSetBy(rng, sw.NumHosts(), dc, sw.HostSwitch)
					} else {
						set = workload.DestSet(rng, sw.NumHosts(), dc)
					}
					spec := core.Spec{Source: set[0], Dests: set[1:], Packets: 8, Policy: core.OptimalTree}
					res := s.Simulate(s.Plan(spec), cfg.Params, stepsim.FPFS)
					lat.Add(res.Latency)
					wait.Add(res.ChannelWait)
				}
			}
			row = append(row, lat.Mean(), wait.Mean())
		}
		tb.AddFloats(fmt.Sprintf("%d", dc), 2, row...)
	}
	return &Result{
		ID: "abl-cluster", Title: "clustered vs spread destinations", Tables: []*stats.Table{tb},
		Notes: []string{"clustered sets ride shorter routes: lower latency at equal step counts"},
	}
}

func init() {
	register(Experiment{
		ID:    "abl-ports",
		Title: "Ablation: multi-port NI injection vs tree choice",
		Run:   runAblPorts,
	})
}

// runAblPorts probes the paper's core premise: the k-binomial tree wins
// because a single NI injection engine serializes the per-child copies.
// With p concurrent injection engines the per-packet service time falls
// toward ceil(c/p)*t_ns, and the binomial tree regains ground — a design
// note for NI hardware that postdates the paper.
func runAblPorts(cfg Config) *Result {
	sys := systems(cfg)
	tb := stats.NewTable("Binomial vs optimal k-binomial latency (us) as NI injection ports grow; 31 dests, m=16",
		"ports", "binomial", "k-binomial", "speedup")
	for _, ports := range []int{1, 2, 4, 8} {
		params := cfg.Params
		params.NIPorts = ports
		var bin, kbin stats.Summary
		for t, s := range sys {
			for i := 0; i < cfg.Sweep.Trials; i++ {
				rng := cfg.Sweep.TrialRNG(t, i)
				set := workload.DestSet(rng, s.Net.NumHosts(), 31)
				spec := core.Spec{Source: set[0], Dests: set[1:], Packets: 16}
				spec.Policy = core.BinomialTree
				bin.Add(s.Latency(spec, params))
				spec.Policy = core.OptimalTree
				kbin.Add(s.Latency(spec, params))
			}
		}
		tb.AddFloats(fmt.Sprintf("%d", ports), 2, bin.Mean(), kbin.Mean(), bin.Mean()/kbin.Mean())
	}
	return &Result{
		ID: "abl-ports", Title: "NI injection ports", Tables: []*stats.Table{tb},
		Notes: []string{
			"the k-binomial advantage exists because injection is serial; parallel injection engines erode it",
			"note the optimal-k table itself assumes 1 port — with p ports the effective lag is ceil(c/p)",
		},
	}
}

func init() {
	register(Experiment{
		ID:    "abl-path",
		Title: "Ablation: deterministic vs multipath up*/down* route selection",
		Run:   runAblPath,
	})
}

// runAblPath compares the deterministic shortest-legal-path router with
// the oblivious multipath variant that hashes ties across all shortest
// legal paths. Multipath spreads tree edges over more channels, cutting
// same-step conflicts; its effect on latency shows how much of the
// remaining contention is routing-induced rather than NI-induced.
func runAblPath(cfg Config) *Result {
	tb := stats.NewTable("Deterministic vs multipath up*/down*; 31 dests, k=2 trees",
		"m", "det latency", "det conf", "multi latency", "multi conf")
	for _, m := range []int{2, 8} {
		var dLat, dConf, mLat, mConf stats.Summary
		for t := 0; t < cfg.Sweep.Topologies; t++ {
			seed := cfg.Sweep.TopologySeed(t)
			det := core.NewIrregularSystem(topology.DefaultIrregular(), seed)
			netCopy := det.Net
			multiRouter := routing.NewUpDownMultipath(netCopy, 0xA17)
			multi := det.WithOrdering(det.Ord)
			multi.Router = multiRouter
			for i := 0; i < cfg.Sweep.Trials; i++ {
				rng := cfg.Sweep.TrialRNG(t, i)
				set := workload.DestSet(rng, netCopy.NumHosts(), 31)
				spec := core.Spec{Source: set[0], Dests: set[1:], Packets: m,
					Policy: core.FixedKTree, K: 2}
				dPlan := det.Plan(spec)
				dLat.Add(det.Simulate(dPlan, cfg.Params, stepsim.FPFS).Latency)
				dConf.Add(float64(det.Conflicts(dPlan, stepsim.FPFS)))
				mPlan := multi.Plan(spec)
				mLat.Add(multi.Simulate(mPlan, cfg.Params, stepsim.FPFS).Latency)
				mConf.Add(float64(multi.Conflicts(mPlan, stepsim.FPFS)))
			}
		}
		tb.AddFloats(fmt.Sprintf("%d", m), 2, dLat.Mean(), dConf.Mean(), mLat.Mean(), mConf.Mean())
	}
	return &Result{
		ID: "abl-path", Title: "route selection", Tables: []*stats.Table{tb},
		Notes: []string{"multipath draws each pair's path from all shortest legal options"},
	}
}
