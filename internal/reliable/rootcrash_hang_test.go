package reliable

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// A destination crash-stops shortly before the root crashes: the root
// crash stops the detector before confirmation, so the down host's edge
// should still be resolved somehow without hanging.
func TestRootCrashWithUnconfirmedDestCrash(t *testing.T) {
	sys := irregular64(3)
	cfg := DefaultConfig()
	cfg.Quorum = 1
	spec := core.Spec{Source: 0, Dests: seqDests(1, 31), Packets: 6, Policy: core.OptimalTree}
	plan := sys.Plan(spec)
	victim := plan.Tree.Children(plan.Tree.Root())[0]
	payload := payloadFor(6, cfg.Params, 7)
	fp := sim.FaultPlan{Crashes: []sim.HostCrash{
		{Host: victim, At: 20},
		{Host: plan.Tree.Root(), At: 25},
	}}
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := Deliver(sys, plan, payload, cfg, fp)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		t.Logf("finished: status=%v err=%v", o.res.Status, o.err)
	case <-time.After(10 * time.Second):
		t.Fatal("delivery hung: root crash with unconfirmed dest crash")
	}
}
