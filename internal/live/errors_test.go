package live

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/collectives"
	"repro/internal/reliable"
)

// TestTypedErrorsWrapAndUnwrap pins the errors.Is/As contract for every
// typed failure the engines return: each concrete error unwraps to its
// package sentinel, survives arbitrary %w wrapping, and its fields stay
// reachable through errors.As.
func TestTypedErrorsWrapAndUnwrap(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
		as       func(error) bool
	}{
		{
			name: "watchdog",
			err: &WatchdogError{
				Timeout: 42, Missing: map[int][]int{0: {3}},
				Progress: map[int][]DestProgress{0: {{Host: 3, Received: 1, Expected: 2}}},
			},
			sentinel: ErrWatchdog,
			as: func(err error) bool {
				var we *WatchdogError
				return errors.As(err, &we) && len(we.Missing[0]) == 1 &&
					we.Progress[0][0].Host == 3
			},
		},
		{
			name:     "loss",
			err:      &collectives.LossError{Op: "scatter", Missing: map[int]int{2: 4}},
			sentinel: collectives.ErrLoss,
			as: func(err error) bool {
				var le *collectives.LossError
				return errors.As(err, &le) && le.Op == "scatter" && le.Missing[2] == 4
			},
		},
		{
			name:     "delivery",
			err:      &reliable.DeliveryError{Orphaned: []int{5, 6}, Partitioned: true},
			sentinel: reliable.ErrDelivery,
			as: func(err error) bool {
				var de *reliable.DeliveryError
				return errors.As(err, &de) && de.Partitioned && len(de.Orphaned) == 2
			},
		},
		{
			name:     "crash",
			err:      &reliable.CrashError{Crashed: []int{1}, Delivered: 2, Quorum: 3, Epoch: 4},
			sentinel: reliable.ErrCrash,
			as: func(err error) bool {
				var ce *reliable.CrashError
				return errors.As(err, &ce) && ce.Quorum == 3 && ce.Epoch == 4
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !errors.Is(tc.err, tc.sentinel) {
				t.Fatalf("bare %T does not match its sentinel", tc.err)
			}
			wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", tc.err))
			if !errors.Is(wrapped, tc.sentinel) {
				t.Fatalf("double-wrapped %T does not match its sentinel", tc.err)
			}
			if !tc.as(wrapped) {
				t.Fatalf("errors.As through wrapping lost %T's fields", tc.err)
			}
			for _, other := range cases {
				if other.name != tc.name && errors.Is(wrapped, other.sentinel) {
					t.Fatalf("%s matched %s's sentinel", tc.name, other.name)
				}
			}
		})
	}
}
