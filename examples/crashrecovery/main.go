// crashrecovery demonstrates crash-tolerant multicast sessions: the
// root's first child — an interior forwarder carrying a whole subtree —
// crash-stops while packets are streaming.
//
// Part 1 — crash-stop with a quorum: the heartbeat failure detector
// confirms the silent host, the group installs an epoch-numbered view
// without it, in-flight traffic from the old view is fenced off, and the
// orphaned subtree is adopted by its nearest live ancestor via a fresh
// contention-free k-binomial construction (the paper's Fig. 11, re-run
// over the survivors). The session ends delivered-partial: every
// survivor byte-exact, only the crashed host missing.
//
// Part 2 — crash with recovery: the same host comes back mid-session
// with empty buffers, resumes heartbeats, and is re-admitted by a third
// view; the root replays the full message to it and the session ends
// fully delivered.
//
//	go run ./examples/crashrecovery
package main

import (
	"bytes"
	"fmt"

	"repro"
	"repro/internal/workload"
)

func main() {
	sys := repro.NewIrregularSystem(repro.DefaultIrregularConfig(), 31)
	cfg := repro.DefaultReliableConfig()
	rng := workload.NewRNG(23)

	set := workload.DestSet(rng, 64, 31)
	spec := repro.Spec{Source: set[0], Dests: set[1:], Packets: 8, Policy: repro.OptimalTree}
	plan := sys.Plan(spec)

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}

	// The victim: the root's first child, which forwards to a subtree.
	victim := plan.Tree.Children(plan.Tree.Root())[0]
	subtree := len(plan.Tree.SubtreeNodes(victim))
	fmt.Printf("machine: %s\n", sys.Net.Summary())
	fmt.Printf("workload: %d destinations, %d packets; victim h%d forwards a %d-host subtree\n\n",
		len(spec.Dests), spec.Packets, victim, subtree)

	fmt.Println("part 1: the victim crash-stops at t=25us (quorum = survivors)")
	cfg.Quorum = len(spec.Dests) - 1
	res, err := repro.DeliverReliable(sys, plan, payload, cfg, repro.FaultPlan{
		Crashes: []repro.HostCrash{{Host: victim, At: 25}},
	})
	if err != nil {
		panic(err)
	}
	report(res, payload, spec.Dests)

	fmt.Println("\npart 2: the same crash, but the host recovers at t=300us")
	res, err = repro.DeliverReliable(sys, plan, payload, cfg, repro.FaultPlan{
		Crashes: []repro.HostCrash{{Host: victim, At: 25, RecoverAt: 300}},
	})
	if err != nil {
		panic(err)
	}
	report(res, payload, spec.Dests)

	fmt.Println("\nthe detector confirms the silent host from missed heartbeats, the epoch")
	fmt.Println("advance fences the stale in-flight traffic, and the orphans are adopted by")
	fmt.Println("re-running the contention-free construction over the survivors; a recovered")
	fmt.Println("host rejoins with empty buffers and gets the whole message replayed.")
}

func report(res *repro.ReliableResult, payload []byte, dests []int) {
	exact := 0
	for _, d := range dests {
		if bytes.Equal(res.Delivered[d], payload) {
			exact++
		}
	}
	fmt.Printf("  status %s: %d/%d destinations byte-exact, latency %.1fus\n",
		res.Status, exact, len(dests), res.Latency)
	fmt.Printf("  %d sends (%d retransmits), %d crash-dropped, %d fenced, %d adoption(s)\n",
		res.Sends, res.Retransmits, res.Faults.CrashDrops, res.Fenced, res.Adoptions)
	for i, v := range res.Views {
		if i == 0 {
			fmt.Printf("  view epoch %d: initial, %d members\n", v.Epoch, len(v.Members))
		} else {
			fmt.Printf("  view epoch %d @ %.1fus: %d members\n", v.Epoch, v.At, len(v.Members))
		}
	}
}
