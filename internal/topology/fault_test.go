package topology

import (
	"testing"

	"repro/internal/workload"
)

func TestWithoutLinkRemovesExactlyOne(t *testing.T) {
	net := Irregular(DefaultIrregular(), workload.NewRNG(1))
	// Pick a switch-switch link.
	var victim Link
	for _, l := range net.Links() {
		if l.A.Kind == SwitchNode && l.B.Kind == SwitchNode {
			victim = l
			break
		}
	}
	degA := len(net.SwitchLinks(victim.A.Index))
	faulty := net.WithoutLink(victim.ID)
	if len(faulty.Links()) != len(net.Links())-1 {
		t.Fatalf("link count %d, want %d", len(faulty.Links()), len(net.Links())-1)
	}
	if got := len(faulty.SwitchLinks(victim.A.Index)); got != degA-1 {
		t.Errorf("endpoint degree %d, want %d", got, degA-1)
	}
	// Host attachments unchanged.
	for h := 0; h < net.NumHosts(); h++ {
		if faulty.HostSwitch(h) != net.HostSwitch(h) {
			t.Fatalf("host %d moved switches", h)
		}
	}
	// Original untouched.
	if len(net.Links()) != len(faulty.Links())+1 {
		t.Error("original network mutated")
	}
}

func TestWithoutLinkRejectsHostLinks(t *testing.T) {
	net := Irregular(DefaultIrregular(), workload.NewRNG(2))
	hostLink := net.HostLink(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic removing a host link")
		}
	}()
	net.WithoutLink(hostLink.ID)
}

func TestWithoutLinkOutOfRange(t *testing.T) {
	net := Irregular(DefaultIrregular(), workload.NewRNG(3))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad link id")
		}
	}()
	net.WithoutLink(-1)
}

func TestWithoutLinkChannelIDsDense(t *testing.T) {
	net := Irregular(DefaultIrregular(), workload.NewRNG(4))
	var victim Link
	for _, l := range net.Links() {
		if l.A.Kind == SwitchNode && l.B.Kind == SwitchNode {
			victim = l
			break
		}
	}
	faulty := net.WithoutLink(victim.ID)
	for i, l := range faulty.Links() {
		if l.ID != i {
			t.Fatalf("link IDs not dense after removal: links[%d].ID = %d", i, l.ID)
		}
	}
	if faulty.NumChannels() != 2*len(faulty.Links()) {
		t.Error("channel count inconsistent")
	}
}
