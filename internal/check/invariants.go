package check

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"repro/internal/analytic"
	"repro/internal/flitsim"
	"repro/internal/ktree"
	"repro/internal/ordering"
	"repro/internal/reliable"
	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/tree"
)

// Violation is one failed invariant on one instance.
type Violation struct {
	ID     string // invariant identifier (stable across shrinking)
	Detail string // what disagreed, with the numbers
}

func (v Violation) String() string { return fmt.Sprintf("[%s] %s", v.ID, v.Detail) }

// Invariant is one named cross-engine property. Check returns nil when the
// property holds on the built instance.
type Invariant struct {
	ID    string
	Doc   string
	Check func(*world) error
}

// Invariants is the harness catalogue, run in order on every instance.
var Invariants = []Invariant{
	{"tree-structure", "the planned tree is a valid tree over exactly the chain, spans contiguous chain segments (Fig. 11), and respects the fanout bound k", checkTreeStructure},
	{"stepsim-structure", "the step schedule covers every node, sends each packet once per edge, and arrivals are ordered", checkStepsimStructure},
	{"theorem2-bound", "measured FPFS steps never exceed the Theorem-2 model t1(n,k)+(m-1)k", checkTheorem2Bound},
	{"t1-exact", "the single-packet FPFS schedule takes exactly Steps1(n,k) steps", checkT1Exact},
	{"theorem1-full-tree", "on full k-binomial trees the packet-completion lag is exactly c_R=k and total steps are exactly t1+(m-1)k", checkTheorem1FullTree},
	{"discipline-order", "FPFS is never slower than FCFS or conventional forwarding at step granularity", checkDisciplineOrder},
	{"steps-monotone-m", "adding a packet adds at least one FPFS step", checkStepsMonotoneM},
	{"t1-monotone-k", "single-packet steps never increase with a larger fanout bound", checkT1MonotoneK},
	{"analytic-optimality", "the Theorem-3 latency is minimal over the instance's fanout bound", checkAnalyticOptimality},
	{"analytic-loss-identities", "the loss closed forms satisfy their defining identities", checkAnalyticLossIdentities},
	{"sim-stepsim-agree", "on contention-free schedules the event simulator reproduces the step schedule exactly under calibrated constants; under contention it is never faster", checkSimStepsimAgree},
	{"cube-contention-free", "hypercube dimension-ordered chains yield contention-free trees (Fig. 11 construction)", checkCubeContentionFree},
	{"flit-agree", "the flit-level simulator completes structurally and stays within band of the packet-level model", checkFlitAgree},
	{"reliable-lossless-replay", "a zero-fault reliable run replays the lossless engine byte-exactly", checkReliableLosslessReplay},
	{"reliable-loss-agreement", "lossy reliable runs deliver byte-exactly and their send counts match the 1/(1-p) expectation", checkReliableLossAgreement},
	{"crash-no-posthumous-delivery", "a crash-stopped host is never recorded as completing after its crash instant", checkCrashNoPosthumousDelivery},
	{"crash-epoch-monotone", "accepted packets carry nondecreasing epochs and installed views advance the epoch strictly", checkCrashEpochMonotone},
	{"crash-survivor-bytes", "every surviving destination is delivered byte-exactly despite crashes, recoveries, and loss", checkCrashSurvivorBytes},
	{"live-matches-sim", "the goroutine live runtime reproduces the FPFS step schedule's structure exactly: per-host delivery order, parent edges, and send/receive counts", checkLiveMatchesSim},
	{"live-faulty-terminates", "the chaos-plane live engine reaches a clean verdict on every fault plan — loss, corruption, reordering, ACK loss, crashes — never the watchdog", checkLiveFaultyTerminates},
	{"live-survivor-bytes", "every destination not scheduled to crash-stop ends the faulty live run holding the byte-exact payload", checkLiveSurvivorBytes},
	{"live-epoch-monotone", "faulty live accepts carry per-host nondecreasing epochs and installed views advance strictly from the initial epoch-1 view", checkLiveEpochMonotone},
	{"live-faulty-lossless-identity", "with the fault plane at p=0 the chaos-wrapped reliable live engine is byte- and order-identical to the plain live engine", checkLiveFaultyLosslessIdentity},
	{"net-matches-live", "the same instance executed over loopback UDP sockets is structurally identical to the in-process live run: delivery order, parent edges, send/receive counts, byte-exact payloads", checkNetMatchesLive},
	{"net-faulty-delivery", "the instance split across two cooperating daemon processes over a lossy UDP fabric still delivers byte-exactly with a clean Delivered verdict — retransmission, ACKs and DONE/STOP handshakes all crossing real sockets", checkNetFaultyDelivery},
	{"sched-matches-serial", "three sessions run concurrently through the session scheduler — shared NIs, a window smaller than the load, DRR fair queueing — deliver byte-exactly with per-host send/receive counts and arrival order identical to each session run alone through the live runtime", checkSchedMatchesSerial},
	{"psim-matches-sim", "the sharded parallel event engine is byte-identical to the serial simulator at every worker count: same results bitwise, same trace order, same fault-RNG draw sequence — lossless and under a fault plan with a kill timed exactly on the first window boundary", checkPsimMatchesSim},
}

// InvariantByID returns the catalogue entry with the given ID.
func InvariantByID(id string) (Invariant, bool) {
	for _, inv := range Invariants {
		if inv.ID == id {
			return inv, true
		}
	}
	return Invariant{}, false
}

// selected, when non-nil, restricts Check to the IDs it contains. It is
// written once by Select before a sweep starts and only read afterwards;
// calling Select concurrently with a running sweep is a data race.
var selected map[string]bool

// Select restricts the catalogue that Check — and therefore Run,
// RunParallel, RunCase and Shrink — evaluates to the given IDs; calling
// it with no arguments restores the full catalogue. Unknown IDs are an
// error and leave the filter unchanged. Shrinking is unaffected by the
// filter beyond the obvious: a violation can only come from a selected
// invariant, and that invariant stays selected while its counterexample
// shrinks.
func Select(ids ...string) error {
	if len(ids) == 0 {
		selected = nil
		return nil
	}
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := InvariantByID(id); !ok {
			return fmt.Errorf("check: unknown invariant %q", id)
		}
		m[id] = true
	}
	selected = m
	return nil
}

// Active returns the invariants Check currently evaluates: the whole
// catalogue, or the subset chosen by Select, in catalogue order.
func Active() []Invariant {
	if selected == nil {
		return Invariants
	}
	var out []Invariant
	for _, inv := range Invariants {
		if selected[inv.ID] {
			out = append(out, inv)
		}
	}
	return out
}

// Check builds the instance and runs the full catalogue, converting panics
// (from the harness or any engine) into violations so a crashing backend is
// a reportable, shrinkable finding rather than a process abort.
func Check(inst Instance) []Violation {
	if err := inst.Validate(); err != nil {
		return []Violation{{ID: "invalid-instance", Detail: err.Error()}}
	}
	var out []Violation
	w, err := safeBuild(inst)
	if err != nil {
		return []Violation{{ID: "build-panic", Detail: err.Error()}}
	}
	for _, inv := range Active() {
		if err := safeCheck(inv, w); err != nil {
			out = append(out, Violation{ID: inv.ID, Detail: err.Error()})
		}
	}
	return out
}

func safeBuild(inst Instance) (w *world, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic while building: %v", r)
		}
	}()
	return build(inst), nil
}

func safeCheck(inv Invariant, w *world) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return inv.Check(w)
}

// ---------------------------------------------------------------- tree --

func checkTreeStructure(w *world) error {
	if err := w.plan.Tree.Validate(w.plan.Chain); err != nil {
		return fmt.Errorf("tree invalid over chain: %v", err)
	}
	if !tree.SegmentSpans(w.plan.Tree, w.plan.Chain) {
		return fmt.Errorf("subtree spans a non-contiguous chain segment (k=%d chain=%v)", w.plan.K, w.plan.Chain)
	}
	if d := w.plan.Tree.MaxDegree(); d > w.plan.K {
		return fmt.Errorf("max degree %d exceeds fanout bound k=%d", d, w.plan.K)
	}
	return nil
}

// -------------------------------------------------------------- stepsim --

func checkStepsimStructure(w *world) error {
	s := stepsim.Run(w.plan.Tree, w.m, w.inst.Disc)
	if got, want := len(s.Sends), (w.n-1)*w.m; got != want {
		return fmt.Errorf("%v schedule has %d sends, want (n-1)*m = %d", w.inst.Disc, got, want)
	}
	if len(s.Arrival) != w.n {
		return fmt.Errorf("%v schedule covers %d nodes, want %d", w.inst.Disc, len(s.Arrival), w.n)
	}
	maxArr := 0
	for v, arr := range s.Arrival {
		for j := 1; j < len(arr); j++ {
			if arr[j] < arr[j-1] {
				return fmt.Errorf("%v: node %d receives packet %d at step %d before packet %d at step %d",
					w.inst.Disc, v, j, arr[j], j-1, arr[j-1])
			}
		}
		if v != w.plan.Tree.Root() && arr[0] < 1 {
			return fmt.Errorf("%v: node %d receives packet 0 at step %d < 1", w.inst.Disc, v, arr[0])
		}
		if last := arr[len(arr)-1]; last > maxArr {
			maxArr = last
		}
	}
	if s.TotalSteps != maxArr {
		return fmt.Errorf("%v: TotalSteps=%d but last arrival is step %d", w.inst.Disc, s.TotalSteps, maxArr)
	}
	if done := s.PacketDone(w.m - 1); done != s.TotalSteps {
		return fmt.Errorf("%v: last packet done at %d, total steps %d", w.inst.Disc, done, s.TotalSteps)
	}
	return nil
}

func checkTheorem2Bound(w *world) error {
	got := stepsim.Steps(w.plan.Tree, w.m, stepsim.FPFS)
	if got > w.plan.ModelSteps {
		return fmt.Errorf("measured FPFS steps %d exceed model bound t1+(m-1)k = %d (n=%d m=%d k=%d)",
			got, w.plan.ModelSteps, w.n, w.m, w.plan.K)
	}
	return nil
}

func checkT1Exact(w *world) error {
	got := stepsim.Steps(w.plan.Tree, 1, stepsim.FPFS)
	want := ktree.Steps1(w.n, w.plan.K)
	if got != want {
		return fmt.Errorf("single-packet schedule takes %d steps, Steps1(%d,%d) = %d", got, w.n, w.plan.K, want)
	}
	return nil
}

func checkTheorem1FullTree(w *world) error {
	k := w.plan.K
	s1 := ktree.Steps1(w.n, k)
	if w.n != ktree.Coverage(s1, k) || w.plan.Tree.RootDegree() != k {
		return nil // not a full k-binomial tree; Theorems 1-2 give only bounds
	}
	sched := stepsim.Run(w.plan.Tree, w.m, stepsim.FPFS)
	if want := s1 + (w.m-1)*k; sched.TotalSteps != want {
		return fmt.Errorf("full tree (n=%d k=%d m=%d): %d steps, Theorem 2 says exactly %d",
			w.n, k, w.m, sched.TotalSteps, want)
	}
	for i, lag := range sched.Lags() {
		if lag != k {
			return fmt.Errorf("full tree (n=%d k=%d): packet lag %d is %d, Theorem 1 says c_R=%d",
				w.n, k, i, lag, k)
		}
	}
	return nil
}

func checkDisciplineOrder(w *world) error {
	fp := stepsim.Steps(w.plan.Tree, w.m, stepsim.FPFS)
	fc := stepsim.Steps(w.plan.Tree, w.m, stepsim.FCFS)
	cv := stepsim.Steps(w.plan.Tree, w.m, stepsim.Conventional)
	if fp > fc {
		return fmt.Errorf("FPFS %d steps > FCFS %d steps", fp, fc)
	}
	if fp > cv {
		return fmt.Errorf("FPFS %d steps > conventional %d steps", fp, cv)
	}
	return nil
}

func checkStepsMonotoneM(w *world) error {
	a := stepsim.Steps(w.plan.Tree, w.m, stepsim.FPFS)
	b := stepsim.Steps(w.plan.Tree, w.m+1, stepsim.FPFS)
	if b < a+1 {
		return fmt.Errorf("m=%d takes %d steps but m=%d takes %d: an extra packet must add a step", w.m, a, w.m+1, b)
	}
	return nil
}

func checkT1MonotoneK(w *world) error {
	prev := ktree.Steps1(w.n, 1)
	for k := 2; k <= w.kMax(); k++ {
		cur := ktree.Steps1(w.n, k)
		if cur > prev {
			return fmt.Errorf("Steps1(%d,%d) = %d > Steps1(%d,%d) = %d: t1 must not grow with k",
				w.n, k, cur, w.n, k-1, prev)
		}
		prev = cur
	}
	return nil
}

// ------------------------------------------------------------- analytic --

func checkAnalyticOptimality(w *world) error {
	c := analytic.Costs{THostSend: 12.5, THostRecv: 12.5, TStep: 5.0}
	opt, kOpt := analytic.SmartOptimal(w.n, w.m, c)
	mine := analytic.SmartKBinomial(w.n, w.m, w.plan.K, c)
	if opt > mine+1e-9 {
		return fmt.Errorf("SmartOptimal(n=%d m=%d) = %f (k=%d) beatable by k=%d at %f",
			w.n, w.m, opt, kOpt, w.plan.K, mine)
	}
	if sp := analytic.Speedup(w.n, w.m, c); sp < 1-1e-9 {
		return fmt.Errorf("Speedup(n=%d m=%d) = %f < 1: the optimal tree lost to the binomial baseline", w.n, w.m, sp)
	}
	return nil
}

func checkAnalyticLossIdentities(w *world) error {
	p := w.inst.DropRate
	f := analytic.ExpectedSendsFactor(p)
	if math.Abs(f*(1-p)-1) > 1e-12 {
		return fmt.Errorf("ExpectedSendsFactor(%f)*(1-p) = %v, want 1", p, f*(1-p))
	}
	edges := w.n - 1
	got := analytic.ExpectedTreeSends(edges, w.m, p)
	want := float64(edges) * float64(w.m) * f
	if math.Abs(got-want) > 1e-9*math.Max(1, want) {
		return fmt.Errorf("ExpectedTreeSends(%d,%d,%f) = %f, want edges*m*factor = %f", edges, w.m, p, got, want)
	}
	return nil
}

// -------------------------------------------------------- sim vs stepsim --

// calibrationParams makes one sim transmission cost exactly one t_step
// regardless of route length: zero router delay and zero NI receive
// overhead, so both the NI injection cadence (t_ns + wire) and the
// edge-to-edge packet time collapse to the same constant. Under these
// constants a contention-free step schedule and the event simulation are
// the same object on different clocks.
func calibrationParams() sim.Params {
	return sim.Params{
		THostSend:   8,
		THostRecv:   4,
		TNISend:     3,
		TNIRecv:     0,
		PacketBytes: 64,
		LinkBytesUS: 32, // wire = 2 us, exactly representable
		RouterDelay: 0,
	}
}

func checkSimStepsimAgree(w *world) error {
	p := calibrationParams()
	tstep := p.TNISend + p.WireTime() // 5.0
	for _, d := range []stepsim.Discipline{stepsim.FPFS, stepsim.FCFS} {
		steps := stepsim.Steps(w.plan.Tree, w.m, d)
		res := sim.Multicast(w.sys.Router, w.plan.Tree, w.m, p, d)
		want := p.THostSend + float64(steps)*tstep + p.THostRecv
		if res.Sends != (w.n-1)*w.m {
			return fmt.Errorf("%v: sim injected %d packets, want (n-1)*m = %d", d, res.Sends, (w.n-1)*w.m)
		}
		if len(res.HostDone) != w.n-1 {
			return fmt.Errorf("%v: sim completed %d destinations, want %d", d, len(res.HostDone), w.n-1)
		}
		if res.Latency < want-1e-6 {
			return fmt.Errorf("%v: sim latency %f beats the step schedule's %f — contention can only delay",
				d, res.Latency, want)
		}
		if ordering.Conflicts(w.plan.Tree, w.m, d, w.sys.Router) == 0 {
			if res.ChannelWait != 0 {
				return fmt.Errorf("%v: contention-free schedule but sim reports %f us channel wait", d, res.ChannelWait)
			}
			if math.Abs(res.Latency-want) > 1e-6 {
				return fmt.Errorf("%v: contention-free latency %f != t_s + steps*t_step + t_r = %f (steps=%d)",
					d, res.Latency, want, steps)
			}
		}
	}
	return nil
}

func checkCubeContentionFree(w *world) error {
	if w.inst.Topo != TopoCube || w.inst.Arity != 2 {
		return nil // the guarantee is specific to hypercubes with e-cube routing
	}
	if c := ordering.Conflicts(w.plan.Tree, w.m, stepsim.FPFS, w.sys.Router); c != 0 {
		return fmt.Errorf("hypercube 2^%d k=%d: %d same-step channel conflicts, want 0", w.inst.Dims, w.plan.K, c)
	}
	return nil
}

// -------------------------------------------------------------- flitsim --

// flitMatchedParams converts the flit constants into the equivalent
// packet-level constants (same conversion the flitcheck experiment uses).
func flitMatchedParams(fp flitsim.Params) sim.Params {
	return sim.Params{
		THostSend:   float64(fp.HostSendCycles) * fp.CycleUS,
		THostRecv:   float64(fp.HostRecvCycles) * fp.CycleUS,
		TNISend:     float64(fp.NISendCycles) * fp.CycleUS,
		TNIRecv:     float64(fp.NIRecvCycles) * fp.CycleUS,
		PacketBytes: 64,
		LinkBytesUS: 64 / (float64(fp.FlitsPerPacket) * fp.CycleUS),
		RouterDelay: fp.CycleUS,
	}
}

// flitAgreeBand bounds the flit-level vs packet-level latency ratio. The
// packet model reserves whole paths atomically, so it can be slightly
// pessimistic or optimistic against true wormhole flow control, but on
// these workloads the two track each other well within this band (the
// flitcheck experiment measures ratios within a few percent of 1).
const flitAgreeLo, flitAgreeHi = 0.5, 2.0

func checkFlitAgree(w *world) error {
	if w.inst.Hosts() > 16 || w.m > 4 {
		return nil // keep the cycle-accurate arm off the big instances
	}
	fp := flitsim.DefaultParams()
	fr := flitsim.Multicast(w.sys.Router, w.plan.Tree, w.m, fp)
	if fr.Injections != (w.n-1)*w.m {
		return fmt.Errorf("flitsim injected %d copies, want (n-1)*m = %d", fr.Injections, (w.n-1)*w.m)
	}
	if len(fr.HostDone) != w.n-1 {
		return fmt.Errorf("flitsim completed %d destinations, want %d", len(fr.HostDone), w.n-1)
	}
	pk := sim.Multicast(w.sys.Router, w.plan.Tree, w.m, flitMatchedParams(fp), stepsim.FPFS)
	if ratio := fr.Latency / pk.Latency; ratio < flitAgreeLo || ratio > flitAgreeHi {
		return fmt.Errorf("flit latency %f vs packet-level %f: ratio %f outside [%g, %g]",
			fr.Latency, pk.Latency, ratio, flitAgreeLo, flitAgreeHi)
	}
	return nil
}

// ------------------------------------------------------------- reliable --

// reliableConfig is the harness protocol configuration: the package
// defaults with a deeper retry budget, so that at the harness's loss
// rates (p <= 0.15) the probability of a spurious orphan is negligible,
// and quorum 1, so crash instances report partial delivery instead of a
// quorum error (the crash invariants judge the survivors directly).
func reliableConfig() reliable.Config {
	cfg := reliable.DefaultConfig()
	cfg.RetryBudget = 20
	cfg.Quorum = 1
	return cfg
}

func checkReliableLosslessReplay(w *world) error {
	cfg := reliableConfig()
	payload := w.inst.payload()
	res, err := reliable.Deliver(w.sys, w.plan, payload, cfg, sim.FaultPlan{})
	if err != nil {
		return fmt.Errorf("zero-fault delivery failed: %v", err)
	}
	want := sim.Multicast(w.sys.Router, w.plan.Tree, res.Packets, cfg.Params, stepsim.FPFS)
	if res.Latency != want.Latency {
		return fmt.Errorf("zero-fault latency %f != lossless engine %f", res.Latency, want.Latency)
	}
	if res.Sends != want.Sends || res.Retransmits != 0 || res.Duplicates != 0 {
		return fmt.Errorf("zero-fault sends=%d retransmits=%d duplicates=%d, lossless engine sends=%d",
			res.Sends, res.Retransmits, res.Duplicates, want.Sends)
	}
	// Iterate hosts in sorted order: the violation detail must name the
	// same host on every run, or parallel and serial harness reports could
	// diff on a real failure.
	hosts := make([]int, 0, len(want.HostDone))
	for h := range want.HostDone {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	for _, h := range hosts {
		if res.HostDone[h] != want.HostDone[h] {
			return fmt.Errorf("zero-fault host %d done at %f, lossless engine says %f", h, res.HostDone[h], want.HostDone[h])
		}
	}
	for _, d := range w.inst.Dests {
		if !bytes.Equal(res.Delivered[d], payload) {
			return fmt.Errorf("zero-fault destination %d received %d bytes, want the %d-byte payload",
				d, len(res.Delivered[d]), len(payload))
		}
	}
	return nil
}

func checkReliableLossAgreement(w *world) error {
	p := w.inst.DropRate
	if p == 0 {
		return nil
	}
	cfg := reliableConfig()
	payload := w.inst.payload()
	fp := sim.FaultPlan{Seed: w.inst.FaultSeed, DropRate: p}
	res, err := reliable.Deliver(w.sys, w.plan, payload, cfg, fp)
	if err != nil {
		return fmt.Errorf("lossy delivery (p=%f) failed: %v", p, err)
	}
	for _, d := range w.inst.Dests {
		if !bytes.Equal(res.Delivered[d], payload) {
			return fmt.Errorf("lossy destination %d received %d bytes, want the %d-byte payload",
				d, len(res.Delivered[d]), len(payload))
		}
	}
	attempts := (w.n - 1) * res.Packets
	if res.Sends != attempts+res.Retransmits {
		return fmt.Errorf("sends=%d != first attempts %d + retransmits %d", res.Sends, attempts, res.Retransmits)
	}
	// Every (edge, packet) takes Geometric(1-p) transmissions, so total
	// sends concentrate on N/(1-p) with stddev sqrt(N p)/(1-p). A 6-sigma
	// band plus constant slack keeps the check deterministic-by-seed while
	// still catching any systematic drift from the closed form.
	nTrials := float64(attempts)
	want := nTrials * analytic.ExpectedSendsFactor(p)
	band := 6*math.Sqrt(nTrials*p)/(1-p) + 8
	if got := float64(res.Sends); math.Abs(got-want) > band {
		return fmt.Errorf("p=%f: %d sends over %d edge-packets, expectation %f (band +/-%f): 1/(1-p) model violated",
			p, res.Sends, attempts, want, band)
	}
	return nil
}

// --------------------------------------------------------------- crashes --

// crashFaultPlan maps the instance's step-indexed crash schedule onto the
// simulator clock: protocol step s lands at t_s + s*(t_ns + wire), the NI
// injection cadence under the harness constants, so integer steps in a
// shrunk instance stay aligned with protocol activity. The plan composes
// the crashes with the instance's packet-loss stream.
func (in Instance) crashFaultPlan(p sim.Params) sim.FaultPlan {
	fp := sim.FaultPlan{Seed: in.FaultSeed, DropRate: in.DropRate}
	tstep := p.TNISend + p.WireTime()
	for _, cr := range in.Crashes {
		hc := sim.HostCrash{Host: cr.Host, At: p.THostSend + float64(cr.AtStep)*tstep}
		if cr.RecoverStep > 0 {
			hc.RecoverAt = p.THostSend + float64(cr.RecoverStep)*tstep
		}
		fp.Crashes = append(fp.Crashes, hc)
	}
	return fp
}

// crashRun executes the crash-tolerance arm of the instance. The result is
// inspected even when the typed error is non-nil (a lone destination that
// crash-stops legitimately misses quorum 1); only a nil result — the
// protocol refusing to run at all — is a harness-level failure.
func (w *world) crashRun() (*reliable.Result, error) {
	cfg := reliableConfig()
	return reliable.Deliver(w.sys, w.plan, w.inst.payload(), cfg, w.inst.crashFaultPlan(cfg.Params))
}

func checkCrashNoPosthumousDelivery(w *world) error {
	if len(w.inst.Crashes) == 0 {
		return nil
	}
	res, err := w.crashRun()
	if res == nil {
		return fmt.Errorf("crash run produced no result: %v", err)
	}
	fp := w.inst.crashFaultPlan(reliableConfig().Params)
	for _, hc := range fp.Crashes {
		if hc.RecoverAt > 0 {
			continue // a recovered host may finish after its crash
		}
		if t, ok := res.HostDone[hc.Host]; ok && t > hc.At {
			return fmt.Errorf("host %d crash-stops at %f but is recorded done at %f", hc.Host, hc.At, t)
		}
		if _, delivered := res.Delivered[hc.Host]; delivered {
			if _, done := res.HostDone[hc.Host]; !done {
				return fmt.Errorf("host %d crash-stops at %f yet holds a payload with no completion record", hc.Host, hc.At)
			}
		}
	}
	return nil
}

func checkCrashEpochMonotone(w *world) error {
	if len(w.inst.Crashes) == 0 {
		return nil
	}
	res, err := w.crashRun()
	if res == nil {
		return fmt.Errorf("crash run produced no result: %v", err)
	}
	for i, a := range res.Accepts {
		if a.Epoch < 1 || a.Epoch > res.Epoch {
			return fmt.Errorf("accept %d at t=%f carries epoch %d outside [1,%d]", i, a.At, a.Epoch, res.Epoch)
		}
		if i > 0 {
			prev := res.Accepts[i-1]
			if a.Epoch < prev.Epoch {
				return fmt.Errorf("accept %d at t=%f regressed to epoch %d after epoch %d", i, a.At, a.Epoch, prev.Epoch)
			}
			if a.At < prev.At {
				return fmt.Errorf("accept %d at t=%f precedes accept %d at t=%f", i, a.At, i-1, prev.At)
			}
		}
	}
	for i, v := range res.Views {
		if i == 0 && v.Epoch != 1 {
			return fmt.Errorf("first installed view has epoch %d, want 1", v.Epoch)
		}
		if i > 0 && v.Epoch <= res.Views[i-1].Epoch {
			return fmt.Errorf("view %d has epoch %d after epoch %d: views must advance strictly",
				i, v.Epoch, res.Views[i-1].Epoch)
		}
	}
	if len(res.Views) > 0 && res.Views[len(res.Views)-1].Epoch != res.Epoch {
		return fmt.Errorf("final view epoch %d != result epoch %d", res.Views[len(res.Views)-1].Epoch, res.Epoch)
	}
	return nil
}

func checkCrashSurvivorBytes(w *world) error {
	if len(w.inst.Crashes) == 0 {
		return nil
	}
	res, err := w.crashRun()
	if res == nil {
		return fmt.Errorf("crash run produced no result: %v", err)
	}
	crashStopped := map[int]bool{}
	for _, cr := range w.inst.Crashes {
		if cr.RecoverStep == 0 {
			crashStopped[cr.Host] = true
		}
	}
	payload := w.inst.payload()
	for _, d := range w.inst.Dests {
		if crashStopped[d] {
			continue
		}
		got, ok := res.Delivered[d]
		if !ok {
			return fmt.Errorf("survivor %d undelivered (status %v, epoch %d, err %v)", d, res.Status, res.Epoch, err)
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("survivor %d received %d bytes, want the %d-byte payload", d, len(got), len(payload))
		}
	}
	return nil
}
