// Package flitsim is a cycle-accurate flit-level wormhole network
// simulator: packets are sequences of flits that snake through switch
// input buffers, the head flit acquiring each channel of the route and
// the tail releasing it, with true head-of-line blocking — a blocked worm
// keeps every channel it holds.
//
// The packet-granularity simulator (package sim) approximates wormhole
// contention by atomic path reservation; this package provides the ground
// truth that approximation is validated against (see the flit-validation
// tests and the `flitcheck` experiment). All three NI forwarding
// disciplines are supported (FPFS, FCFS, conventional host forwarding);
// Multicast defaults to FPFS, the one the paper's optimal trees target.
//
// Model, per cycle (fixed deterministic order):
//
//  1. every destination host consumes arrived flits; a packet whose tail
//     has arrived is delivered to the NI after its receive overhead, and
//     forwarding copies are enqueued per the discipline;
//  2. every directed channel moves at most one flit from its upstream
//     stage (an NI inject stage or the buffer of the previous channel) to
//     its downstream buffer, if the buffer has space; a free channel is
//     acquired by the lowest-ID competing head flit, an owned channel
//     only passes its owner's flits in order;
//  3. every NI inject stage counts down its per-copy overhead and offers
//     the next flit of the copy it is injecting.
package flitsim

import (
	"fmt"
	"sort"

	"repro/internal/routing"
	"repro/internal/stepsim"
	"repro/internal/tree"
)

// Params holds the flit-level technology constants. Times are in cycles;
// CycleUS converts to microseconds for comparison with package sim.
type Params struct {
	FlitsPerPacket int     // flits per packet, header included
	CycleUS        float64 // microseconds per cycle
	NISendCycles   int     // coprocessor overhead per packet copy
	NIRecvCycles   int     // overhead per packet receive
	HostSendCycles int     // t_s at the source host
	HostRecvCycles int     // t_r at each destination host
	BufferFlits    int     // input buffer depth per channel
}

// DefaultParams mirrors sim.DefaultParams at a 25 ns cycle (40 MHz
// LANai-class coprocessor): 64-byte packets of 8-byte flits plus a header
// flit; 3.0 us NI send = 120 cycles; 2.0 us receive = 80 cycles; 12.5 us
// host overheads = 500 cycles; 4-flit input buffers.
func DefaultParams() Params {
	return Params{
		FlitsPerPacket: 9,
		CycleUS:        0.025,
		NISendCycles:   120,
		NIRecvCycles:   80,
		HostSendCycles: 500,
		HostRecvCycles: 500,
		BufferFlits:    4,
	}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	switch {
	case p.FlitsPerPacket < 1:
		return fmt.Errorf("flitsim: %d flits per packet", p.FlitsPerPacket)
	case p.CycleUS <= 0:
		return fmt.Errorf("flitsim: cycle %f us", p.CycleUS)
	case p.NISendCycles < 1 || p.NIRecvCycles < 0 || p.HostSendCycles < 0 || p.HostRecvCycles < 0:
		return fmt.Errorf("flitsim: negative overhead in %+v", p)
	case p.BufferFlits < 1:
		return fmt.Errorf("flitsim: buffer depth %d", p.BufferFlits)
	}
	return nil
}

// Result reports one flit-level multicast.
type Result struct {
	// Latency in microseconds: source host start to last destination host
	// completion (host overheads included).
	Latency float64
	// Cycles is the raw cycle count of the same span.
	Cycles int
	// HostDone is the completion cycle per destination host.
	HostDone map[int]int
	// Injections counts packet copies injected.
	Injections int
	// PeakChannelHold is the longest time (cycles) any single packet held
	// its full path, a head-of-line blocking indicator.
	PeakChannelHold int
}

// worm is one packet copy in flight or queued.
type worm struct {
	id       int
	route    routing.Route
	pktIdx   int // logical packet index within the message
	dest     int
	flitsIn  int // flits that have left the NI inject stage
	arrived  int // flits consumed at the destination
	headIdx  int // route index of the furthest channel acquired (-1 none)
	tailIdx  int // route index of the furthest channel released (-1 none)
	acquired int // cycle the head acquired the first channel
}

// flit is one buffered flit.
type flit struct {
	w       *worm
	isHead  bool
	isTail  bool
	nextHop int // index into w.route.Channels of the next channel to cross
	movedAt int // cycle of the flit's last move (single-move-per-cycle)
}

// niState is the inject side of one host's network interface.
type niState struct {
	queue     []*worm // copies awaiting injection, FIFO
	overhead  int     // remaining overhead cycles before flits flow
	current   *worm
	available map[int]bool // logical packets present at this NI (source: all)
}

// Multicast runs an m-packet FPFS multicast over tr at flit granularity.
func Multicast(router routing.Router, tr *tree.Tree, m int, p Params) *Result {
	return MulticastDisc(router, tr, m, p, stepsim.FPFS)
}

// MulticastDisc runs an m-packet multicast at flit granularity under the
// given NI forwarding discipline (FPFS, FCFS, or Conventional).
func MulticastDisc(router routing.Router, tr *tree.Tree, m int, p Params, disc stepsim.Discipline) *Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if m < 1 {
		panic(fmt.Sprintf("flitsim: invalid packet count m=%d", m))
	}
	switch disc {
	case stepsim.FPFS, stepsim.FCFS, stepsim.Conventional:
	default:
		panic(fmt.Sprintf("flitsim: unknown discipline %v", disc))
	}
	s := &state{
		router:  router,
		tr:      tr,
		m:       m,
		p:       p,
		disc:    disc,
		bufs:    make([][]flit, router.Network().NumChannels()),
		owner:   make([]*worm, router.Network().NumChannels()),
		nis:     map[int]*niState{},
		recvAt:  map[int]map[int]int{},
		gotPkts: map[int]int{},
		res:     &Result{HostDone: map[int]int{}},
	}
	for _, v := range tr.Nodes() {
		s.nis[v] = &niState{available: map[int]bool{}}
		s.recvAt[v] = map[int]int{}
	}
	s.run()
	return s.res
}

type state struct {
	router  routing.Router
	tr      *tree.Tree
	m       int
	p       Params
	disc    stepsim.Discipline
	cycle   int
	wormSeq int
	bufs    [][]flit // per channel: downstream buffer, FIFO
	owner   []*worm  // per channel: holding worm or nil
	nis     map[int]*niState
	recvAt  map[int]map[int]int // host -> packet -> cycle tail arrived
	gotPkts map[int]int         // host -> packets fully received
	active  int                 // worms injected but not fully delivered
	res     *Result
	pending []timed // scheduled callbacks (NI receive overheads etc.)
}

type timed struct {
	at int
	fn func()
}

func (s *state) schedule(delay int, fn func()) {
	s.pending = append(s.pending, timed{at: s.cycle + delay, fn: fn})
}

// enqueueWorm queues one forwarding copy of logical packet pktIdx from v
// toward child c.
func (s *state) enqueueWorm(v, c, pktIdx int) {
	s.wormSeq++
	w := &worm{
		id:      s.wormSeq,
		route:   s.router.Route(v, c),
		pktIdx:  pktIdx,
		dest:    c,
		headIdx: -1,
		tailIdx: -1,
	}
	s.nis[v].queue = append(s.nis[v].queue, w)
	s.active++
}

// enqueueCopies queues forwarding copies of logical packet pktIdx at node
// v per the discipline. Callers invoke it once per packet as the packet
// becomes available at v (in index order).
func (s *state) enqueueCopies(v, pktIdx int) {
	children := s.tr.Children(v)
	if len(children) == 0 {
		return
	}
	switch s.disc {
	case stepsim.FPFS:
		for _, c := range children {
			s.enqueueWorm(v, c, pktIdx)
		}
	case stepsim.FCFS:
		// Stream each packet to the first child as it becomes available;
		// once the whole message is present, serve the remaining children
		// message-at-a-time.
		s.enqueueWorm(v, children[0], pktIdx)
		if pktIdx == s.m-1 {
			for _, c := range children[1:] {
				for j := 0; j < s.m; j++ {
					s.enqueueWorm(v, c, j)
				}
			}
		}
	case stepsim.Conventional:
		// Host store-and-forward: nothing leaves an intermediate node
		// until the whole message is up at the host; the host then pays
		// t_s per child. The source (which has the message at its NI
		// already) behaves packet-major like FPFS.
		if v == s.tr.Root() {
			for _, c := range children {
				s.enqueueWorm(v, c, pktIdx)
			}
			return
		}
		if pktIdx == s.m-1 {
			base := s.p.HostRecvCycles
			for i := range children {
				c := children[i]
				s.schedule(base+(i+1)*s.p.HostSendCycles, func() {
					for j := 0; j < s.m; j++ {
						s.enqueueWorm(v, c, j)
					}
				})
			}
		}
	}
}

func (s *state) run() {
	root := s.tr.Root()
	// The source host loads the message into its NI after t_s.
	s.schedule(s.p.HostSendCycles, func() {
		for j := 0; j < s.m; j++ {
			s.nis[root].available[j] = true
			s.enqueueCopies(root, j)
		}
		if s.tr.Size() == 1 {
			return
		}
	})

	idle := 0
	for limit := 0; ; limit++ {
		if limit > 100_000_000 {
			panic("flitsim: cycle limit exceeded (deadlock?)")
		}
		s.cycle++
		progressed := s.fire()
		progressed = s.deliver() || progressed
		progressed = s.transfer() || progressed
		progressed = s.inject() || progressed
		if s.done() {
			break
		}
		if progressed || len(s.pending) > 0 {
			// Pending timers (host overheads, NI receive latencies) will
			// fire and make progress; only a quiet system with nothing
			// scheduled can be deadlocked.
			idle = 0
		} else {
			idle++
			if idle > s.p.HostSendCycles+s.p.NISendCycles+s.p.NIRecvCycles+s.p.HostRecvCycles+16 {
				panic(fmt.Sprintf("flitsim: no progress for %d cycles with %d worms active", idle, s.active))
			}
		}
	}
	// Completion is the last host's t_r expiry, which may lie past the
	// loop-exit cycle (the loop ends when the last tail is received).
	last := s.cycle
	for _, done := range s.res.HostDone {
		if done > last {
			last = done
		}
	}
	s.res.Cycles = last
	s.res.Latency = float64(last) * s.p.CycleUS
}

// done reports whether every destination host has completed.
func (s *state) done() bool {
	return len(s.res.HostDone) == s.tr.Size()-1
}

// fire runs scheduled callbacks due this cycle, including callbacks that
// due callbacks schedule for the same cycle (host-overhead chains).
func (s *state) fire() bool {
	progressed := false
	var rest []timed
	queue := s.pending
	s.pending = nil
	for len(queue) > 0 {
		batch := queue
		queue = nil
		for _, t := range batch {
			if t.at <= s.cycle {
				t.fn()
				progressed = true
			} else {
				rest = append(rest, t)
			}
		}
		// Callbacks may have scheduled more work; drain it too.
		queue = append(queue, s.pending...)
		s.pending = nil
	}
	s.pending = rest
	return progressed
}

// deliver consumes flits that have crossed their final channel.
func (s *state) deliver() bool {
	progressed := false
	for c := range s.bufs {
		if len(s.bufs[c]) == 0 {
			continue
		}
		f := s.bufs[c][0]
		if f.nextHop < len(f.w.route.Channels) {
			continue // not at destination yet
		}
		// Consume one flit per cycle per delivery channel.
		s.bufs[c] = s.bufs[c][1:]
		f.w.arrived++
		progressed = true
		if f.isTail {
			s.completeWorm(f.w)
		}
	}
	return progressed
}

func (s *state) completeWorm(w *worm) {
	s.active--
	dst := w.dest
	pkt := w.pktIdx
	if hold := s.cycle - w.acquired; hold > s.res.PeakChannelHold {
		s.res.PeakChannelHold = hold
	}
	s.schedule(s.p.NIRecvCycles, func() {
		s.recvAt[dst][pkt] = s.cycle
		s.gotPkts[dst]++
		s.nis[dst].available[pkt] = true
		s.enqueueCopies(dst, pkt)
		if s.gotPkts[dst] == s.m {
			s.res.HostDone[dst] = s.cycle + s.p.HostRecvCycles
		}
	})
}

// transfer moves at most one flit across every channel.
func (s *state) transfer() bool {
	progressed := false
	for c := 0; c < len(s.owner); c++ {
		// Capacity check at the downstream buffer of c.
		if len(s.bufs[c]) >= s.p.BufferFlits {
			continue
		}
		if w := s.owner[c]; w != nil {
			// Owned: pass the owner's next flit waiting to cross c.
			if f, ok := s.takeUpstream(c, w); ok {
				s.place(c, f)
				progressed = true
			}
			continue
		}
		// Free: head flits compete; lowest worm ID wins (deterministic).
		cands := s.headCandidates(c)
		if len(cands) == 0 {
			continue
		}
		best := cands[0]
		f, ok := s.takeUpstream(c, best)
		if !ok {
			continue
		}
		s.owner[c] = best
		if best.headIdx < 0 {
			best.acquired = s.cycle
		}
		best.headIdx = f.nextHop
		s.place(c, f)
		progressed = true
	}
	return progressed
}

// place puts f into c's downstream buffer, advancing its hop pointer and
// releasing c if f is the tail.
func (s *state) place(c int, f flit) {
	f.nextHop++
	f.movedAt = s.cycle
	s.bufs[c] = append(s.bufs[c], f)
	if f.isTail {
		s.owner[c] = nil
		f.w.tailIdx = f.nextHop - 1
	}
}

// takeUpstream removes and returns w's next flit waiting to cross channel
// c, looking at the inject stage (first hop) or the previous channel's
// buffer head. A flit only moves once per cycle: flits placed this cycle
// are at the buffer tail, and we only ever take heads, which is safe
// because a buffer head placed this cycle implies an empty buffer that the
// capacity check on the *previous* channel already accounted for — to keep
// single-move semantics strict we tag flits with the cycle they moved.
func (s *state) takeUpstream(c int, w *worm) (flit, bool) {
	hop := s.hopIndex(c, w)
	if hop < 0 {
		return flit{}, false
	}
	if hop == 0 {
		// Injection from the NI stage.
		ni := s.nis[w.route.Src]
		if ni.current != w || ni.overhead > 0 || w.flitsIn >= s.p.FlitsPerPacket {
			return flit{}, false
		}
		f := flit{
			w:       w,
			isHead:  w.flitsIn == 0,
			isTail:  w.flitsIn == s.p.FlitsPerPacket-1,
			nextHop: 0,
		}
		w.flitsIn++
		if f.isTail {
			ni.current = nil // NI free for the next copy
		}
		return f, true
	}
	prev := w.route.Channels[hop-1]
	if len(s.bufs[prev]) == 0 {
		return flit{}, false
	}
	head := s.bufs[prev][0]
	if head.w != w || head.nextHop != hop || head.movedAt == s.cycle {
		return flit{}, false
	}
	s.bufs[prev] = s.bufs[prev][1:]
	return head, true
}

// hopIndex returns the index of channel c in w's route, or -1.
func (s *state) hopIndex(c int, w *worm) int {
	for i, ch := range w.route.Channels {
		if ch == c {
			return i
		}
	}
	return -1
}

// headCandidates returns worms whose head flit wants to acquire channel c
// this cycle, sorted by worm ID.
func (s *state) headCandidates(c int) []*worm {
	var out []*worm
	// Injection heads.
	for _, ni := range s.nis {
		if ni.current != nil && ni.overhead == 0 && ni.current.flitsIn == 0 &&
			ni.current.route.Channels[0] == c {
			out = append(out, ni.current)
		}
	}
	// Buffered heads: the head flit sits at the head of the previous
	// channel's buffer.
	for prev := range s.bufs {
		if len(s.bufs[prev]) == 0 {
			continue
		}
		f := s.bufs[prev][0]
		if f.isHead && f.movedAt != s.cycle &&
			f.nextHop < len(f.w.route.Channels) && f.w.route.Channels[f.nextHop] == c {
			out = append(out, f.w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// inject advances every NI's inject stage: pop the next queued copy when
// idle, pay the per-copy overhead.
func (s *state) inject() bool {
	progressed := false
	// Deterministic host order.
	hosts := make([]int, 0, len(s.nis))
	for h := range s.nis {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	for _, h := range hosts {
		ni := s.nis[h]
		if ni.current == nil && len(ni.queue) > 0 {
			ni.current = ni.queue[0]
			ni.queue = ni.queue[1:]
			ni.overhead = s.p.NISendCycles
			s.res.Injections++
			progressed = true
		}
		if ni.current != nil && ni.overhead > 0 {
			ni.overhead--
			progressed = true
		}
	}
	return progressed
}
