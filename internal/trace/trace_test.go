package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func traceRun(t *testing.T, m int) ([]sim.TraceEvent, *core.Plan, *core.System) {
	t.Helper()
	s := core.NewIrregularSystem(topology.DefaultIrregular(), 1)
	set := workload.DestSet(workload.NewRNG(5), 64, 7)
	plan := s.Plan(core.Spec{Source: set[0], Dests: set[1:], Packets: m, Policy: core.OptimalTree})
	_, events := sim.ConcurrentTraced(s.Router,
		[]sim.Session{{Tree: plan.Tree, Packets: m}},
		sim.DefaultParams(), stepsim.FPFS, true)
	return events, plan, s
}

func TestTraceEventCounts(t *testing.T) {
	events, plan, _ := traceRun(t, 4)
	var inj, del, done int
	for _, e := range events {
		switch e.Kind {
		case "inject":
			inj++
		case "deliver":
			del++
		case "done":
			done++
		}
	}
	edges := plan.Tree.Size() - 1
	if inj != edges*4 {
		t.Errorf("injections = %d, want %d", inj, edges*4)
	}
	if del != edges*4 {
		t.Errorf("deliveries = %d, want %d", del, edges*4)
	}
	if done != edges {
		t.Errorf("done events = %d, want %d destinations", done, edges)
	}
}

func TestTraceDisabledIsFree(t *testing.T) {
	s := core.NewIrregularSystem(topology.DefaultIrregular(), 2)
	set := workload.DestSet(workload.NewRNG(5), 64, 7)
	plan := s.Plan(core.Spec{Source: set[0], Dests: set[1:], Packets: 2, Policy: core.OptimalTree})
	res, events := sim.ConcurrentTraced(s.Router,
		[]sim.Session{{Tree: plan.Tree, Packets: 2}},
		sim.DefaultParams(), stepsim.FPFS, false)
	if events != nil {
		t.Error("untraced run returned events")
	}
	if res.Sessions[0].Latency <= 0 {
		t.Error("untraced run failed")
	}
}

func TestCollectStats(t *testing.T) {
	events, plan, _ := traceRun(t, 3)
	st := Collect(events)
	totalInj := 0
	for _, c := range st.Injections {
		totalInj += c
	}
	if totalInj != (plan.Tree.Size()-1)*3 {
		t.Errorf("stats injections = %d", totalInj)
	}
	if st.LastDone <= st.FirstInject {
		t.Error("stats time span degenerate")
	}
	// The source must be among the injectors with >= packets injections.
	if st.Injections[plan.Tree.Root()] < 3 {
		t.Errorf("source injected %d, want >= 3", st.Injections[plan.Tree.Root()])
	}
	out := st.String()
	if !strings.Contains(out, "span:") || !strings.Contains(out, "injections") {
		t.Errorf("stats report malformed:\n%s", out)
	}
}

func TestTimelineRendering(t *testing.T) {
	events, plan, _ := traceRun(t, 3)
	out := Timeline(events, TimelineOptions{Width: 60, Session: -1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one lane per host that acted.
	if len(lines) < plan.Tree.Size() {
		t.Fatalf("timeline has %d lines for %d tree nodes:\n%s", len(lines), plan.Tree.Size(), out)
	}
	if !strings.Contains(lines[0], "us") {
		t.Error("missing header")
	}
	// The source lane contains sends; some lane contains 'D'.
	var sawSend, sawDone bool
	for _, l := range lines[1:] {
		if strings.Contains(l, "s") || strings.Contains(l, "#") {
			sawSend = true
		}
		if strings.Contains(l, "D") {
			sawDone = true
		}
	}
	if !sawSend || !sawDone {
		t.Errorf("timeline missing send/done markers:\n%s", out)
	}
	// Lanes all have the same width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("ragged timeline lanes:\n%s", out)
		}
	}
}

func TestTimelineEmptyAndFilter(t *testing.T) {
	if got := Timeline(nil, TimelineOptions{}); !strings.Contains(got, "empty") {
		t.Errorf("empty trace rendering: %q", got)
	}
	events, _, _ := traceRun(t, 2)
	all := Timeline(events, TimelineOptions{Session: -1})
	only := Timeline(events, TimelineOptions{Session: 0})
	if only != all {
		t.Error("filtering to the only session changed the rendering")
	}
	none := Timeline(events, TimelineOptions{Session: 5})
	if !strings.Contains(none, "time") {
		t.Errorf("filtered-out rendering malformed: %q", none)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	a, _, _ := traceRun(t, 3)
	b, _, _ := traceRun(t, 3)
	ta := Timeline(a, TimelineOptions{})
	tb := Timeline(b, TimelineOptions{})
	if ta != tb {
		t.Error("timeline not deterministic")
	}
}
