// Package ktree implements the core mathematics of the k-binomial multicast
// tree from Kesavan & Panda, "Optimal Multicast with Packetization and
// Network Interface Support" (ICPP 1997).
//
// A k-binomial tree is a recursively doubling multicast tree in which every
// vertex has at most k children. Under the First-Packet-First-Served (FPFS)
// smart network interface discipline, an m-packet multicast over a tree T
// completes in
//
//	t1(T) + (m-1) * cR(T)
//
// steps, where t1 is the number of steps for a single-packet multicast and
// cR is the number of children of the root (Theorems 1 and 2 of the paper).
// The k-binomial tree minimizing that expression over k in [1, ceil(log2 n)]
// is the optimal multicast tree (Theorem 3).
package ktree

import (
	"fmt"
	"math/bits"
)

// MaxNodes bounds the multicast set sizes for which coverage values are
// precomputed on demand. It is far above anything the paper evaluates
// (n <= 64) but keeps table memory trivially small.
const MaxNodes = 1 << 20

// Coverage returns N(s, k): the number of nodes (including the source)
// covered in s steps by a k-binomial tree (Lemma 1 of the paper):
//
//	N(s, k) = 2^s                          if s <= k
//	N(s, k) = 1 + sum_{i=1..k} N(s-i, k)   if s >  k
//
// Values are saturated at MaxNodes to avoid overflow; the saturation point
// is far beyond any practical multicast set size.
//
// Coverage panics if s < 0 or k < 1.
func Coverage(s, k int) int {
	if s < 0 {
		panic(fmt.Sprintf("ktree: negative step count %d", s))
	}
	if k < 1 {
		panic(fmt.Sprintf("ktree: invalid fanout bound k=%d", k))
	}
	if s <= k {
		if s >= 20 {
			return MaxNodes
		}
		return 1 << s
	}
	// Rolling window holding N(step-k .. step-1, k); before the first
	// iteration (step = k+1) that is N(1..k, k) = 2^1 .. 2^k.
	window := make([]int, k)
	for i := 0; i < k; i++ {
		window[i] = 1 << (i + 1)
	}
	n := 0
	for step := k + 1; step <= s; step++ {
		n = 1
		for _, v := range window {
			n += v
			if n >= MaxNodes {
				n = MaxNodes
				break
			}
		}
		copy(window, window[1:])
		window[k-1] = n
	}
	return n
}

// Steps1 returns t1(n, k): the minimum number of steps for a single-packet
// multicast to reach n nodes (source included) with a k-binomial tree, i.e.
// the smallest s with N(s, k) >= n.
//
// Steps1 panics if n < 1 or k < 1.
func Steps1(n, k int) int {
	if n < 1 {
		panic(fmt.Sprintf("ktree: invalid multicast set size n=%d", n))
	}
	if k < 1 {
		panic(fmt.Sprintf("ktree: invalid fanout bound k=%d", k))
	}
	if n == 1 {
		return 0
	}
	// Within the binomial prefix (s <= k), N doubles every step.
	if n <= (1 << uint(min(k, 30))) {
		return CeilLog2(n)
	}
	window := make([]int, k)
	for i := 0; i < k; i++ {
		window[i] = 1 << min(i+1, 30)
	}
	for step := k + 1; ; step++ {
		v := 1
		for _, w := range window {
			v += w
			if v >= MaxNodes {
				v = MaxNodes
				break
			}
		}
		if v >= n {
			return step
		}
		copy(window, window[1:])
		window[k-1] = v
	}
}

// Steps returns the total number of steps for an m-packet multicast to n
// nodes using a k-binomial tree under the FPFS discipline, per Theorem 2:
// t1(n,k) + (m-1)*k.
//
// The paper's objective charges the full fanout bound k as the pipeline
// interval even when the constructed root has fewer children; see
// ScheduledSteps in package tree for the achieved value.
func Steps(n, m, k int) int {
	if m < 1 {
		panic(fmt.Sprintf("ktree: invalid packet count m=%d", m))
	}
	return Steps1(n, k) + (m-1)*k
}

// CeilLog2 returns ceil(log2(n)) for n >= 1.
func CeilLog2(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("ktree: CeilLog2 of %d", n))
	}
	if n == 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// OptimalK returns the fanout bound k minimizing the m-packet FPFS step
// count Steps(n, m, k) over k in [1, ceil(log2 n)], together with that
// minimum step count (Theorem 3). Ties are broken toward the larger k,
// which matches the paper's Fig. 12(a) anchor that m = 1 always selects
// the binomial tree (k = ceil(log2 n)); smaller tied k would minimize the
// same objective with less NI buffer residency, a trade-off callers can
// make themselves via Steps.
//
// n is the multicast set size including the source; n >= 2 and m >= 1.
func OptimalK(n, m int) (k, steps int) {
	if n < 2 {
		panic(fmt.Sprintf("ktree: OptimalK needs n >= 2, got %d", n))
	}
	if m < 1 {
		panic(fmt.Sprintf("ktree: OptimalK needs m >= 1, got %d", m))
	}
	kMax := CeilLog2(n)
	bestK, bestSteps := kMax, Steps(n, m, kMax)
	for k := kMax - 1; k >= 1; k-- {
		if s := Steps(n, m, k); s < bestSteps {
			bestK, bestSteps = k, s
		}
	}
	return bestK, bestSteps
}

// OptimalKPenalized generalizes OptimalK to the simultaneous-multicast
// objective (Haeupler/Hershkowitz/Wajc): it selects the fanout bound k
// minimizing Steps(n, m, k) + penalty(k), where penalty charges a
// candidate plan for the congestion it would add to traffic already in
// flight (typically: steps-per-overlapped-edge against the trees of the
// sessions a scheduler currently runs). penalty must be non-negative;
// a zero penalty function reduces exactly to OptimalK, including its
// larger-k tie-break.
func OptimalKPenalized(n, m int, penalty func(k int) int) (k, cost int) {
	if n < 2 {
		panic(fmt.Sprintf("ktree: OptimalKPenalized needs n >= 2, got %d", n))
	}
	if m < 1 {
		panic(fmt.Sprintf("ktree: OptimalKPenalized needs m >= 1, got %d", m))
	}
	charge := func(k int) int {
		p := penalty(k)
		if p < 0 {
			panic(fmt.Sprintf("ktree: negative congestion penalty %d at k=%d", p, k))
		}
		return Steps(n, m, k) + p
	}
	kMax := CeilLog2(n)
	bestK, bestCost := kMax, charge(kMax)
	for k := kMax - 1; k >= 1; k-- {
		if c := charge(k); c < bestCost {
			bestK, bestCost = k, c
		}
	}
	return bestK, bestCost
}

// Table holds precomputed optimal k values for all multicast set sizes up to
// NMax and packet counts up to MMax, mirroring the paper's Section 4.3.1
// observation that the table is cheap (< O(n*m) small integers) and can be
// computed once per system.
type Table struct {
	nMax, mMax int
	k          []uint8 // k fits in uint8: k <= ceil(log2 n) <= 20 for n <= 2^20
}

// NewTable precomputes optimal k for every (n, m) with 2 <= n <= nMax and
// 1 <= m <= mMax.
func NewTable(nMax, mMax int) *Table {
	if nMax < 2 || mMax < 1 {
		panic(fmt.Sprintf("ktree: invalid table bounds n<=%d m<=%d", nMax, mMax))
	}
	t := &Table{nMax: nMax, mMax: mMax, k: make([]uint8, (nMax-1)*mMax)}
	for n := 2; n <= nMax; n++ {
		for m := 1; m <= mMax; m++ {
			k, _ := OptimalK(n, m)
			t.k[(n-2)*mMax+(m-1)] = uint8(k)
		}
	}
	return t
}

// K returns the precomputed optimal k for the given multicast set size n and
// packet count m. Arguments outside the precomputed range fall back to a
// direct OptimalK computation.
func (t *Table) K(n, m int) int {
	if n < 2 {
		panic(fmt.Sprintf("ktree: Table.K needs n >= 2, got %d", n))
	}
	if n > t.nMax || m < 1 || m > t.mMax {
		k, _ := OptimalK(n, m)
		return k
	}
	return int(t.k[(n-2)*t.mMax+(m-1)])
}

// Bounds reports the precomputed (nMax, mMax) range of the table.
func (t *Table) Bounds() (nMax, mMax int) { return t.nMax, t.mMax }

// CrossoverM returns the smallest packet count m at which the linear chain
// (k = 1) becomes an optimal tree for multicast set size n. The paper notes
// (Section 5.1) that this crossover arrives sooner for smaller n.
func CrossoverM(n int) int {
	if n < 2 {
		panic(fmt.Sprintf("ktree: CrossoverM needs n >= 2, got %d", n))
	}
	for m := 1; ; m++ {
		if k, _ := OptimalK(n, m); k == 1 {
			return m
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
