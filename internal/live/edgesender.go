package live

import (
	"errors"
	"time"

	"repro/internal/live/link"
	"repro/internal/message"
	"repro/internal/workload"
)

// EdgeAck is one acknowledgment handed to an EdgeSender, stamped with
// the receiver's epoch so stale control traffic is fenced like stale
// data.
type EdgeAck struct {
	Seq, Epoch int
}

// EdgeSenderConfig parameterizes one EdgeSender incarnation. The hooks
// decouple the retransmission protocol from any particular runtime: the
// in-process reliable engine and the multi-process daemon both drive
// the same loop with different epoch registers and failure reporters.
type EdgeSenderConfig struct {
	Packets     [][]byte      // the session's wire packets, indexed by sequence
	RTO         time.Duration // base retransmission timeout
	RTOMax      time.Duration // backoff cap
	RetryBudget int           // retransmissions per packet before the edge dies
	JitterSeed  uint64        // private backoff-jitter stream seed

	Abort <-chan struct{} // runtime teardown

	// Epoch, when non-nil, returns the sender's current epoch: positive
	// values are stamped into every (re)transmission and ACKs from older
	// epochs are fenced. Nil leaves the membership plane unarmed.
	Epoch func() int
	// Suppressed, when non-nil and true, makes sends vanish silently (a
	// crashed NI emits nothing) while still burning retry budget, so a
	// long crash exhausts the edge and triggers repair even before a
	// failure detector confirms.
	Suppressed func() bool
	// OnExhausted is called (once, from the sender goroutine) when a
	// packet spends its retry budget; the edge dies immediately after.
	OnExhausted func()
	// OnDead is called (once, from the sender goroutine) when the
	// transport fails with a genuine error — not an abort — killing the
	// incarnation. Repair machinery should treat it like exhaustion.
	OnDead func(error)
}

// EdgeSender is one reliable tree-edge incarnation: a dedicated sender
// goroutine owning the edge's transport, pending set and retransmission
// timers. Packets are sent serially in enqueue order (sequence order
// from a single parent), so a zero-fault plane reproduces the lossless
// engine's per-edge FIFO behavior exactly.
//
// Enqueue and Ack may be called from any goroutine; Run owns everything
// else. The counters are goroutine-owned: read them only after the
// runtime's WaitGroup drains (cancelled edges keep their counts — they
// happened).
type EdgeSender struct {
	tr     link.Transport
	cfg    EdgeSenderConfig
	in     chan int      // novel/replayed sequence numbers from the owning NI
	acks   chan EdgeAck  // from the receiving NI (lossy: overflow drops)
	cancel chan struct{} // closed by the supervisor to retire the incarnation
	jrng   *workload.RNG // backoff jitter stream

	acked       []bool
	sends       int
	retransmits int
	fenced      int // stale-epoch ACKs discarded
}

// NewEdgeSender builds an incarnation over the given transport. The
// caller starts the loop with go es.Run().
func NewEdgeSender(tr link.Transport, cfg EdgeSenderConfig) *EdgeSender {
	m := len(cfg.Packets)
	return &EdgeSender{
		tr:     tr,
		cfg:    cfg,
		in:     make(chan int, 2*m+8),
		acks:   make(chan EdgeAck, 4*m+16),
		cancel: make(chan struct{}),
		acked:  make([]bool, m),
		jrng:   workload.NewRNG(cfg.JitterSeed),
	}
}

// From and To name the edge after the underlying transport.
func (e *EdgeSender) From() int { return e.tr.From() }
func (e *EdgeSender) To() int   { return e.tr.To() }

// Enqueue hands a sequence number to the edge sender. Channel capacity
// covers the worst case (one replay plus one novel pass over the whole
// message), so this blocks only if that invariant is broken — and then
// the abort path still unwedges it.
func (e *EdgeSender) Enqueue(seq int) {
	select {
	case e.in <- seq:
	case <-e.cfg.Abort:
	}
}

// Ack delivers an acknowledgment without ever blocking the receiving
// NI; an overflowing (or retired) edge just loses the ACK, and the
// retransmission path recovers.
func (e *EdgeSender) Ack(a EdgeAck) {
	select {
	case e.acks <- a:
	default:
	}
}

// Cancel retires the incarnation. The supervisor owns the edge set, so
// a given edge is cancelled at most once; Cancel must not race itself.
func (e *EdgeSender) Cancel() { close(e.cancel) }

// Sends, Retransmits and Fenced report the edge's counters. Call only
// after the sender goroutine has been joined.
func (e *EdgeSender) Sends() int       { return e.sends }
func (e *EdgeSender) Retransmits() int { return e.retransmits }
func (e *EdgeSender) Fenced() int      { return e.fenced }

// flight is one unacknowledged packet's retransmission state.
type flight struct {
	attempts int
	due      time.Time
}

// Run is the edge sender loop: send new sequences immediately (the
// transport's admission gate is the only send window), retransmit on
// timer with capped exponential backoff plus seeded jitter, retire on
// ACK, die on budget exhaustion or transport death (reporting either),
// cancel, or abort.
func (e *EdgeSender) Run() {
	inflight := map[int]*flight{}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		wake := time.Hour
		now := time.Now()
		for _, fl := range inflight {
			if r := fl.due.Sub(now); r < wake {
				wake = r
			}
		}
		if wake < 0 {
			wake = 0
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wake)

		select {
		case seq := <-e.in:
			if e.acked[seq] {
				continue
			}
			if _, dup := inflight[seq]; dup {
				continue
			}
			if !e.send(seq, false) {
				return
			}
			inflight[seq] = &flight{attempts: 1, due: time.Now().Add(e.rto(1))}
		case a := <-e.acks:
			if e.cfg.Epoch != nil && a.Epoch < e.cfg.Epoch() {
				e.fenced++ // stale control traffic: ignore, retransmit fresh
				continue
			}
			if a.Seq >= 0 && a.Seq < len(e.acked) && !e.acked[a.Seq] {
				e.acked[a.Seq] = true
				delete(inflight, a.Seq)
			}
		case <-timer.C:
			now := time.Now()
			for seq, fl := range inflight {
				if fl.due.After(now) {
					continue
				}
				if fl.attempts > e.cfg.RetryBudget {
					// Budget spent: this incarnation dies; the supervisor
					// repairs or abandons the subtree behind it.
					if e.cfg.OnExhausted != nil {
						e.cfg.OnExhausted()
					}
					return
				}
				if !e.send(seq, true) {
					return
				}
				fl.attempts++
				fl.due = now.Add(e.rto(fl.attempts))
			}
		case <-e.cancel:
			return
		case <-e.cfg.Abort:
			return
		}
	}
}

// send injects one (re)transmission, stamped with the current epoch when
// the membership plane is armed. A suppressed send vanishes silently but
// still burns retry budget. Returns false when the incarnation must die:
// on abort, or on a genuine transport error (reported via OnDead so the
// repair machinery routes around the dead link).
func (e *EdgeSender) send(seq int, retrans bool) bool {
	if e.cfg.Suppressed != nil && e.cfg.Suppressed() {
		return true
	}
	pkt := e.cfg.Packets[seq]
	if e.cfg.Epoch != nil {
		if g := e.cfg.Epoch(); g > 0 {
			if stamped, err := message.WithEpoch(pkt, uint16(g)); err == nil {
				pkt = stamped
			}
		}
	}
	if err := e.tr.Send(pkt, e.cfg.Abort); err != nil {
		if !errors.Is(err, link.ErrAborted) && e.cfg.OnDead != nil {
			e.cfg.OnDead(err)
		}
		return false
	}
	e.sends++
	if retrans {
		e.retransmits++
	}
	return true
}

// rto returns the retransmission timeout for the given attempt count:
// base RTO doubling per attempt, capped, widened by a jitter draw from
// the edge's private stream (decorrelated from any chaos plane's loss
// stream, like sim's jrng).
func (e *EdgeSender) rto(attempt int) time.Duration {
	d := e.cfg.RTO
	for i := 1; i < attempt && d < e.cfg.RTOMax; i++ {
		d *= 2
	}
	if d > e.cfg.RTOMax {
		d = e.cfg.RTOMax
	}
	return d + time.Duration(e.jrng.Float64()*0.25*float64(d))
}
