package topology

import "fmt"

// Partition assigns every host to one of parts workers and returns the
// owner index per host. Two strategies, picked by the network's shape:
//
//   - Grid networks (Cube/Mesh, host id == switch id): contiguous
//     host-index slabs. Row-major grid numbering makes a contiguous index
//     range an axis-aligned slab, so only the links crossing slab
//     boundaries in the highest dimension are cut — the edge-cut-minimal
//     family for equal-sized parts on a grid.
//   - Irregular networks: a splitmix64 hash of the host id. Random wiring
//     has no geometry to exploit; hashing balances load and keeps the
//     assignment independent of switch numbering.
//
// Slabs are balanced to within one host. parts may exceed the host count;
// the surplus parts simply own no hosts (the parallel simulator tolerates
// empty partitions). Partition panics if parts < 1.
func Partition(net *Network, parts int) []int {
	if parts < 1 {
		panic(fmt.Sprintf("topology: partition into %d parts", parts))
	}
	n := net.NumHosts()
	owner := make([]int, n)
	if _, _, ok := net.Grid(); ok {
		for h := 0; h < n; h++ {
			owner[h] = h * parts / n
		}
		return owner
	}
	for h := 0; h < n; h++ {
		owner[h] = int(splitmix64(uint64(h)) % uint64(parts))
	}
	return owner
}

// EdgeCut counts the switch-switch links whose endpoints belong to
// different parts under the given host-owner assignment, attributing each
// switch to the part of its lowest attached host. Switches with no hosts
// are skipped. It is a diagnostic for partition quality: cross-part links
// bound the cross-worker mailbox traffic of a parallel run.
func EdgeCut(net *Network, owner []int) int {
	if len(owner) != net.NumHosts() {
		panic(fmt.Sprintf("topology: owner slice has %d entries for %d hosts",
			len(owner), net.NumHosts()))
	}
	part := make([]int, net.NumSwitches())
	for s := range part {
		part[s] = -1
		if hosts := net.SwitchHosts(s); len(hosts) > 0 {
			part[s] = owner[hosts[0]]
		}
	}
	cut := 0
	for _, l := range net.Links() {
		if l.A.Kind != SwitchNode || l.B.Kind != SwitchNode {
			continue
		}
		pa, pb := part[l.A.Index], part[l.B.Index]
		if pa >= 0 && pb >= 0 && pa != pb {
			cut++
		}
	}
	return cut
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash for
// host ids (Steele, Lea & Flood, OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
