// Command mcastd hosts one process's share of a multicast tree's
// network interfaces over real UDP sockets (internal/mcastd): the
// deployment shape of the paper's NI-supported multicast, with packets
// fragmented into checksummed datagrams and flow-controlled by credits.
//
// Every participating process must be started with the SAME plan flags
// (-topo, -arity, -dims, -wseed, -dests, -bytes, -packet, -k, -pseed,
// -session): each daemon derives the identical tree, payload and packet
// set deterministically from them, so nothing but datagrams and the
// DONE/STOP control handshake ever crosses the wire.
//
// Single-process smoke (every host in this process, loopback sockets):
//
//	mcastd -all -dests 15 -bytes 8192
//
// Two processes splitting a 4-host tree (host 0 is the root):
//
//	mcastd -hosts 0,1 -bind 0=127.0.0.1:9000,1=127.0.0.1:9001 \
//	       -peers 2=127.0.0.1:9002,3=127.0.0.1:9003 -dests 3
//	mcastd -hosts 2,3 -bind 2=127.0.0.1:9002,3=127.0.0.1:9003 \
//	       -peers 0=127.0.0.1:9000,1=127.0.0.1:9001 -dests 3
//
// With -reliable the daemons run the loss- and crash-tolerant protocol:
// per-edge retransmission with epoch fencing, process heartbeats, and
// Fig.-11 adoption of subtrees orphaned by a killed peer daemon. The
// root then settles a typed verdict (delivered, delivered-partial with
// -quorum, or failed) instead of wedging on the first lost datagram.
// -droprate arms a seeded self-test chaos plane on this process's data
// transports:
//
//	mcastd -all -reliable -droprate 0.03 -dests 15 -bytes 8192
//
// The root's process exits once every destination has reported DONE;
// destination processes exit when the root floods STOP (an acknowledged
// exchange retried until -drain expires). Exit status is 1 on a
// watchdog timeout or delivery failure, 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/live/link"
	"repro/internal/mcastd"
	"repro/internal/message"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main; it returns the process exit code.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("mcastd", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		topo    = fs.String("topo", "cube", "topology: cube or mesh")
		arity   = fs.Int("arity", 2, "topology arity")
		dims    = fs.Int("dims", 4, "topology dimensions")
		dests   = fs.Int("dests", 0, "number of destinations (0 = every other host)")
		wseed   = fs.Uint64("wseed", 7, "destination-set seed (source is the set's first draw)")
		bytesN  = fs.Int("bytes", 4096, "message payload size in bytes")
		packet  = fs.Int("packet", 256, "wire packet size in bytes")
		k       = fs.Int("k", 0, "fanout bound (0 = the optimal k of Theorem 3)")
		pseed   = fs.Uint64("pseed", 11, "payload content seed")
		session = fs.Uint64("session", 1, "datagram session nonce (shared by all daemons of a run)")
		mtu     = fs.Int("mtu", 0, "datagram MTU (0 = default)")
		window  = fs.Int("window", 0, "per-edge credit window in fragments (0 = default)")
		buffer  = fs.Int("buffer", 0, "NI buffer slots per host (0 = unbounded)")
		timeout = fs.Duration("timeout", 30*time.Second, "whole-run watchdog")
		relF    = fs.Bool("reliable", false, "run the loss- and crash-tolerant protocol (retransmission, heartbeats, adoption)")
		dropF   = fs.Float64("droprate", 0, "reliable mode: seeded self-test drop rate on this process's data plane [0,1)")
		rtoF    = fs.Duration("rto", 0, "reliable mode: base retransmission timeout (0 = default)")
		retryF  = fs.Int("retries", 0, "reliable mode: per-packet retransmission budget (0 = default)")
		quorumF = fs.Int("quorum", 0, "reliable mode: destinations required for a partial verdict (0 = all)")
		drainF  = fs.Duration("drain", 0, "graceful-shutdown bound on the root's STOP handshake (0 = default)")
		all     = fs.Bool("all", false, "host every NI in this process over loopback sockets")
		hostsF  = fs.String("hosts", "", "comma-separated hosts this process runs (multi-process mode)")
		bindF   = fs.String("bind", "", "local bind addresses: HOST=ADDR,... (multi-process mode)")
		peersF  = fs.String("peers", "", "remote peer addresses: HOST=ADDR,...")
		verbose = fs.Bool("v", false, "log protocol milestones")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var sys *core.System
	switch *topo {
	case "cube":
		sys = core.NewCubeSystem(*arity, *dims)
	case "mesh":
		sys = core.NewMeshSystem(*arity, *dims)
	default:
		fmt.Fprintf(errw, "mcastd: unknown topology %q (want cube or mesh)\n", *topo)
		return 2
	}
	numHosts := sys.Net.NumHosts()
	nd := *dests
	if nd == 0 {
		nd = numHosts - 1
	}
	if nd < 1 || nd >= numHosts {
		fmt.Fprintf(errw, "mcastd: -dests must be in 1..%d\n", numHosts-1)
		return 2
	}
	set := workload.DestSet(workload.NewRNG(*wseed), numHosts, nd)
	spec := core.Spec{Source: set[0], Dests: set[1:], Packets: 1, Policy: core.OptimalTree}
	if *k > 0 {
		spec.Policy = core.FixedKTree
		spec.K = *k
	}

	payload := make([]byte, *bytesN)
	prng := workload.NewRNG(*pseed)
	for i := range payload {
		payload[i] = byte(prng.Intn(256))
	}
	pkts, err := message.Packetize(1, spec.Source, payload, *packet)
	if err != nil {
		fmt.Fprintf(errw, "mcastd: packetize: %v\n", err)
		return 2
	}
	spec.Packets = len(pkts)
	plan := sys.Plan(spec)

	ucfg := link.UDPConfig{Session: *session, MTU: *mtu, Window: *window}
	var nw *link.UDPNetwork
	var local []int
	if *all {
		if *hostsF != "" || *bindF != "" || *peersF != "" {
			fmt.Fprintln(errw, "mcastd: -all conflicts with -hosts/-bind/-peers")
			return 2
		}
		local = plan.Tree.Nodes()
		nw, err = link.NewLoopbackUDP(local, ucfg)
		if err != nil {
			fmt.Fprintf(errw, "mcastd: loopback fabric: %v\n", err)
			return 1
		}
	} else {
		local, err = parseHosts(*hostsF)
		if err != nil {
			fmt.Fprintf(errw, "mcastd: -hosts: %v\n", err)
			return 2
		}
		binds, err := parseAddrs(*bindF)
		if err != nil {
			fmt.Fprintf(errw, "mcastd: -bind: %v\n", err)
			return 2
		}
		peers, err := parseAddrs(*peersF)
		if err != nil {
			fmt.Fprintf(errw, "mcastd: -peers: %v\n", err)
			return 2
		}
		nw, err = link.NewUDPNetwork(ucfg)
		if err != nil {
			fmt.Fprintf(errw, "mcastd: %v\n", err)
			return 1
		}
		for _, v := range local {
			addr, ok := binds[v]
			if !ok {
				addr = "127.0.0.1:0"
			}
			bound, err := nw.Listen(v, addr)
			if err != nil {
				fmt.Fprintf(errw, "mcastd: bind host %d: %v\n", v, err)
				nw.Close()
				return 1
			}
			fmt.Fprintf(out, "host %d listening on %s\n", v, bound)
		}
		for v, addr := range peers {
			if err := nw.AddPeer(v, addr); err != nil {
				fmt.Fprintf(errw, "mcastd: peer host %d: %v\n", v, err)
				nw.Close()
				return 1
			}
		}
		localSet := map[int]bool{}
		for _, v := range local {
			localSet[v] = true
		}
		var missing []int
		for _, v := range plan.Tree.Nodes() {
			if !localSet[v] {
				if _, ok := peers[v]; !ok {
					missing = append(missing, v)
				}
			}
		}
		if len(missing) > 0 {
			sort.Ints(missing)
			fmt.Fprintf(errw, "mcastd: tree hosts %v are neither local nor in -peers\n", missing)
			nw.Close()
			return 2
		}
	}
	defer nw.Close()

	fmt.Fprintf(out, "plan: %d hosts, source h%d, %d destinations, k=%d, %d packets of %d bytes (%d-byte message)\n",
		numHosts, spec.Source, len(spec.Dests), plan.K, len(pkts), *packet, len(payload))
	fmt.Fprintf(out, "this process hosts %v\n", local)

	mcfg := mcastd.Config{
		Tree:          plan.Tree,
		Packets:       pkts,
		MsgID:         1,
		Local:         local,
		Net:           nw,
		BufferPackets: *buffer,
		Timeout:       *timeout,
		Drain:         *drainF,
	}
	if *verbose {
		mcfg.Log = errw
	}
	var res *mcastd.Result
	if *relF {
		rcfg := mcastd.DefaultReliableConfig()
		if *rtoF > 0 {
			rcfg.RTO = *rtoF
			if rcfg.RTOMax < rcfg.RTO {
				rcfg.RTOMax = 10 * rcfg.RTO
			}
		}
		if *retryF > 0 {
			rcfg.RetryBudget = *retryF
		}
		rcfg.Quorum = *quorumF
		if *dropF > 0 {
			rcfg.Faults = link.Faults{Seed: *session ^ 0xD20B, DropRate: *dropF}
		}
		res, err = mcastd.RunReliable(mcfg, rcfg)
	} else {
		if *dropF > 0 {
			fmt.Fprintln(errw, "mcastd: -droprate requires -reliable (the plain engine wedges on loss)")
			return 2
		}
		res, err = mcastd.Run(mcfg)
	}
	if err != nil {
		fmt.Fprintf(errw, "mcastd: %v\n", err)
		if res != nil && len(res.Completed) > 0 {
			fmt.Fprintf(out, "partial progress: %d/%d destinations confirmed\n", len(res.Completed), len(spec.Dests))
		}
		return 1
	}
	fmt.Fprintf(out, "done in %v (fabric %+v)\n", res.Wall.Round(time.Microsecond), nw.Stats())
	if *relF {
		fmt.Fprintf(out, "verdict %v: epoch %d, %d retransmits, %d duplicates, %d adoptions\n",
			res.Status, res.Epoch, res.Retransmits, res.Duplicates, res.Adoptions)
		if len(res.Crashed) > 0 {
			fmt.Fprintf(out, "crashed hosts: %v; undelivered: %v\n", res.Crashed, res.Orphaned)
		}
	}
	if len(res.Completed) > 0 {
		fmt.Fprintf(out, "root confirmed %d/%d destinations\n", len(res.Completed), len(spec.Dests))
	}
	ids := make([]int, 0, len(res.Hosts))
	for v := range res.Hosts {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	for _, v := range ids {
		rep := res.Hosts[v]
		if v == plan.Tree.Root() {
			fmt.Fprintf(out, "  h%-3d root: %d packet copies sent\n", v, rep.Sends)
			continue
		}
		fmt.Fprintf(out, "  h%-3d delivered %d bytes at %v (%d recv, %d fwd)\n",
			v, len(rep.Data), rep.DoneAt.Round(time.Microsecond), rep.Recvs, rep.Sends)
	}
	return 0
}

// parseHosts parses "0,1,2".
func parseHosts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no hosts given (use -hosts or -all)")
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad host %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no hosts given")
	}
	return out, nil
}

// parseAddrs parses "0=127.0.0.1:9000,1=127.0.0.1:9001".
func parseAddrs(s string) (map[int]string, error) {
	out := map[int]string{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		host, addr, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want HOST=ADDR)", f)
		}
		v, err := strconv.Atoi(strings.TrimSpace(host))
		if err != nil {
			return nil, fmt.Errorf("bad host in %q", f)
		}
		if _, dup := out[v]; dup {
			return nil, fmt.Errorf("host %d listed twice", v)
		}
		out[v] = strings.TrimSpace(addr)
	}
	return out, nil
}
