package check

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/live"
	"repro/internal/live/link"
	"repro/internal/message"
	"repro/internal/reliable"
	"repro/internal/workload"
)

// liveStep maps the instance's abstract crash steps onto the live
// runtime's wall clock. With the pacing jitter below, a whole message
// takes a few to tens of milliseconds to flood the tree, so steps in the
// generator's 1..24 window (2..48 ms) land mid-protocol exactly as they
// do on the simulator clock. Short crash-recovery windows heal through
// retransmission alone; crash-stops ride the failure detector.
const liveStep = 2 * time.Millisecond

// liveFaults derives the chaos plane of the faulty live arm from the
// instance's fault plan. The drop rate is the instance's own; corruption,
// reordering and ACK loss are decorrelated draws from the fault seed, so
// a shrunk instance replays its exact chaos. Every arm carries at least a
// little send jitter: it keeps the FaultyTransport decorator on the hot
// path even when the plane is otherwise lossless (the identity invariant
// then proves the decorator itself is transparent), and on crash arms it
// paces delivery so scheduled crashes interleave with live traffic.
func (in Instance) liveFaults() link.Faults {
	rng := workload.NewRNG(in.FaultSeed ^ 0xc4a0_5f17_ba11_ad01)
	f := link.Faults{
		Seed:      in.FaultSeed ^ 0x5eed_fa07,
		MaxJitter: 150 * time.Microsecond,
	}
	if in.DropRate > 0 {
		f.DropRate = in.DropRate
		f.CorruptRate = 0.04 * rng.Float64()
		f.ReorderRate = 0.15 * rng.Float64()
		f.AckDropRate = 0.08 * rng.Float64()
	}
	if len(in.Crashes) > 0 {
		f.MaxJitter = 500*time.Microsecond + time.Duration(rng.Intn(1000))*time.Microsecond
	}
	return f
}

// liveCrashes maps the step-indexed crash schedule onto the live clock.
func (in Instance) liveCrashes() []live.HostCrash {
	var out []live.HostCrash
	for _, cr := range in.Crashes {
		hc := live.HostCrash{Host: cr.Host, At: time.Duration(cr.AtStep) * liveStep}
		if cr.RecoverStep > 0 {
			hc.RecoverAt = time.Duration(cr.RecoverStep) * liveStep
		}
		out = append(out, hc)
	}
	return out
}

// liveReliableConfig is the harness configuration of the faulty live arm:
// RTOs fast enough that a 250-case sweep stays in seconds, a retry budget
// deep enough that a spurious orphan at the harness loss rates (p <= 0.15
// plus <= 0.04 corruption) is a ~(0.2)^21 event, and quorum 1 so a crash
// instance reports partial delivery instead of a quorum error — the
// survivor-bytes invariant judges the survivors directly.
func (in Instance) liveReliableConfig() live.ReliableConfig {
	cfg := live.DefaultReliableConfig()
	cfg.Live = in.liveConfig()
	cfg.Faults = in.liveFaults()
	cfg.Crashes = in.liveCrashes()
	cfg.RTO = 8 * time.Millisecond
	cfg.RTOMax = 64 * time.Millisecond
	cfg.RetryBudget = 20
	// Scheduling bursts on a loaded box can falsely confirm live hosts; the
	// resulting rejoin-and-regraft churn is harmless as long as it never
	// tips a destination into abandonment, so the bound is generous.
	cfg.MaxRegrafts = 64
	cfg.Quorum = 1
	// Detector windows sized for a loaded single-CPU CI box: a scheduling
	// or GC burst must not read as host silence, or false confirmations
	// cascade into adoption flapping. Every crash-stop still confirms in
	// well under 100 ms, so a 250-case sweep stays in seconds.
	cfg.Heartbeat = live.HeartbeatParams{
		Every:        3 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		ConfirmAfter: 30 * time.Millisecond,
		JitterFrac:   0.25,
	}
	return cfg
}

// liveFaultyRun executes (once per world) the instance's plan on the
// reliable live engine under the derived chaos plane. All four
// live-faulty invariants read this one run.
func (w *world) liveFaultyRun() (*live.ReliableResult, error) {
	w.liveRelOnce.Do(func() {
		payload := w.inst.livePayload()
		pkts, err := message.Packetize(1, w.plan.Spec.Source, payload, livePacketBytes)
		if err != nil {
			w.liveRelErr = fmt.Errorf("packetize: %v", err)
			return
		}
		w.liveRelRes, w.liveRelErr = live.RunReliable(
			live.Session{Tree: w.plan.Tree, Packets: pkts, MsgID: 1},
			w.inst.liveReliableConfig())
	})
	return w.liveRelRes, w.liveRelErr
}

// crashStopped returns the set of destinations scheduled to crash and
// never recover — the hosts no liveness or delivery claim applies to.
func (in Instance) crashStopped() map[int]bool {
	out := map[int]bool{}
	for _, cr := range in.Crashes {
		if cr.RecoverStep == 0 {
			out[cr.Host] = true
		}
	}
	return out
}

// checkLiveFaultyTerminates is the liveness arm: every harness fault plan
// — loss, corruption, reordering, ACK loss, crash-stops, recoveries —
// must drive the real goroutine engine to a clean verdict, never into the
// watchdog. At the harness retry budget a typed delivery failure is
// admissible only in the one legitimate case: every destination
// crash-stopped, so quorum 1 is unreachable.
func checkLiveFaultyTerminates(w *world) error {
	res, err := w.liveFaultyRun()
	if res == nil {
		return fmt.Errorf("faulty live run produced no result: %v", err)
	}
	var we *live.WatchdogError
	if errors.As(err, &we) {
		return fmt.Errorf("faulty live run stalled into the watchdog: %v", err)
	}
	if err != nil {
		survivors := 0
		stopped := w.inst.crashStopped()
		for _, d := range w.inst.Dests {
			if !stopped[d] {
				survivors++
			}
		}
		if survivors == 0 && errors.Is(err, reliable.ErrCrash) {
			return nil // all destinations crash-stopped: quorum legitimately missed
		}
		return fmt.Errorf("faulty live run failed (status %v, orphaned %v, crashed %v): %v",
			res.Status, res.Orphaned, res.Crashed, err)
	}
	if res.Status != reliable.Delivered && res.Status != reliable.DeliveredPartial {
		return fmt.Errorf("nil error but status %v", res.Status)
	}
	if res.Wall <= 0 {
		return fmt.Errorf("run reports non-positive wall clock %v", res.Wall)
	}
	return nil
}

// checkLiveSurvivorBytes is the safety arm: every destination that is not
// scheduled to crash-stop — including hosts that crash and rejoin
// amnesiac — ends the run holding the byte-exact payload, whatever the
// chaos plane did in between.
func checkLiveSurvivorBytes(w *world) error {
	res, err := w.liveFaultyRun()
	if res == nil {
		return fmt.Errorf("faulty live run produced no result: %v", err)
	}
	payload := w.inst.livePayload()
	stopped := w.inst.crashStopped()
	for _, d := range w.inst.Dests {
		if stopped[d] {
			continue
		}
		rec := res.Hosts[d]
		if rec == nil || rec.Data == nil {
			return fmt.Errorf("survivor %d undelivered (status %v, epoch %d, orphaned %v, err %v)",
				d, res.Status, res.Epoch, res.Orphaned, err)
		}
		if !bytes.Equal(rec.Data, payload) {
			return fmt.Errorf("survivor %d reassembled %d bytes, want the %d-byte payload",
				d, len(rec.Data), len(payload))
		}
		if rec.DoneAt <= 0 {
			return fmt.Errorf("survivor %d delivered but has no completion timestamp", d)
		}
	}
	return nil
}

// checkLiveEpochMonotone pins the epoch fencing of the live membership
// plane: unarmed runs carry no epoch state at all; armed runs accept
// packets under per-host nondecreasing epochs within [1, final], and
// install strictly advancing views starting from the initial epoch-1
// view. (Monotonicity is per host: wall-clock timestamps taken in
// different goroutines are not totally ordered against the shared epoch
// register, unlike the simulator's virtual clock.)
func checkLiveEpochMonotone(w *world) error {
	res, err := w.liveFaultyRun()
	if res == nil {
		return fmt.Errorf("faulty live run produced no result: %v", err)
	}
	if len(w.inst.Crashes) == 0 {
		if res.Epoch != 0 || len(res.Views) != 0 || len(res.Accepts) != 0 {
			return fmt.Errorf("unarmed run leaked epoch state: epoch=%d views=%d accepts=%d",
				res.Epoch, len(res.Views), len(res.Accepts))
		}
		return nil
	}
	if res.Epoch < 1 {
		return fmt.Errorf("armed run ended at epoch %d < 1", res.Epoch)
	}
	last := map[int]int{}
	for i, a := range res.Accepts {
		if a.Epoch < 1 || a.Epoch > res.Epoch {
			return fmt.Errorf("accept %d (host %d, t=%v) carries epoch %d outside [1,%d]",
				i, a.Host, a.At, a.Epoch, res.Epoch)
		}
		if prev, ok := last[a.Host]; ok && a.Epoch < prev {
			return fmt.Errorf("accept %d: host %d regressed to epoch %d after epoch %d",
				i, a.Host, a.Epoch, prev)
		}
		last[a.Host] = a.Epoch
	}
	for i, v := range res.Views {
		if i == 0 && v.Epoch != 1 {
			return fmt.Errorf("first installed view has epoch %d, want 1", v.Epoch)
		}
		if i > 0 && v.Epoch <= res.Views[i-1].Epoch {
			return fmt.Errorf("view %d has epoch %d after epoch %d: views must advance strictly",
				i, v.Epoch, res.Views[i-1].Epoch)
		}
	}
	if len(res.Views) == 0 {
		return fmt.Errorf("armed run installed no views")
	}
	if final := res.Views[len(res.Views)-1].Epoch; final != res.Epoch {
		return fmt.Errorf("final view epoch %d != result epoch %d", final, res.Epoch)
	}
	return nil
}

// checkLiveFaultyLosslessIdentity is the p=0 differential: on lossless,
// crash-free instances the chaos-wrapped reliable engine must reproduce
// the plain live engine exactly — byte-identical reassembly, identical
// per-host admission order and parent edges, identical receive counts
// and net send counts, zero fencing, zero injected faults. Send jitter
// is active in the wrapped run, so this also proves the decorator
// perturbs nothing but timing.
//
// One wall-clock allowance: retransmissions are NOT required to be zero.
// The RTO timers are real, so a scheduler stall longer than the harness
// RTO (routine when CI oversubscribes a small box with -race worker
// goroutines) fires a spurious resend of a frame whose ACK was merely
// late. Those resends are provably inert — with p=0 the original always
// arrived, so every one is suppressed as a duplicate and the novel
// structure the identity compares is untouched. The check therefore
// pins the inertness (duplicates account for the retransmits, and net
// injections match the plain engine) instead of a timing-dependent
// zero.
func checkLiveFaultyLosslessIdentity(w *world) error {
	if w.inst.DropRate > 0 || len(w.inst.Crashes) > 0 {
		return nil
	}
	res, err := w.liveFaultyRun()
	if res == nil || err != nil {
		return fmt.Errorf("zero-fault reliable live run failed: %v", err)
	}
	payload := w.inst.livePayload()
	pkts, err := message.Packetize(1, w.plan.Spec.Source, payload, livePacketBytes)
	if err != nil {
		return fmt.Errorf("packetize: %v", err)
	}
	plain, err := live.Run([]live.Session{{Tree: w.plan.Tree, Packets: pkts, MsgID: 1}}, w.inst.liveConfig())
	if err != nil {
		return fmt.Errorf("plain live reference run failed: %v", err)
	}
	if res.Fenced != 0 {
		return fmt.Errorf("zero-fault run fenced %d frame(s): no stale epochs can exist", res.Fenced)
	}
	if res.Duplicates > res.Retransmits {
		return fmt.Errorf("zero-fault run suppressed %d duplicates with only %d retransmits: frames were duplicated in transit",
			res.Duplicates, res.Retransmits)
	}
	if total := res.Faults.Total(); total != 0 {
		return fmt.Errorf("zero-fault chaos plane injected %d fault(s): %+v", total, res.Faults)
	}
	if res.Sends-res.Retransmits != plain.Sends {
		return fmt.Errorf("reliable engine injected %d novel copies (%d sends - %d retransmits), plain engine %d",
			res.Sends-res.Retransmits, res.Sends, res.Retransmits, plain.Sends)
	}
	pr := plain.Sessions[0]
	for _, v := range w.plan.Tree.Nodes() {
		rec, ref := res.Hosts[v], pr.Hosts[v]
		if rec == nil || ref == nil {
			return fmt.Errorf("host %d missing from a result (reliable %v, plain %v)", v, rec != nil, ref != nil)
		}
		if rec.Sends < ref.Sends || rec.Recvs != ref.Recvs {
			return fmt.Errorf("host %d sends/recvs %d/%d, plain engine %d/%d",
				v, rec.Sends, rec.Recvs, ref.Sends, ref.Recvs)
		}
		if len(rec.Arrivals) != len(ref.Arrivals) {
			return fmt.Errorf("host %d admitted %d frames, plain engine %d", v, len(rec.Arrivals), len(ref.Arrivals))
		}
		for i, a := range rec.Arrivals {
			if a != ref.Arrivals[i] {
				return fmt.Errorf("host %d arrival %d is %+v, plain engine %+v", v, i, a, ref.Arrivals[i])
			}
		}
		if !bytes.Equal(rec.Data, ref.Data) {
			return fmt.Errorf("host %d reassembled %d bytes, plain engine %d: payloads differ",
				v, len(rec.Data), len(ref.Data))
		}
	}
	return nil
}
