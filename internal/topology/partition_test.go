package topology

import (
	"testing"

	"repro/internal/workload"
)

func TestPartitionSlabOnMesh(t *testing.T) {
	net := Mesh(8, 2) // 64 hosts, row-major numbering
	owner := Partition(net, 4)
	if len(owner) != 64 {
		t.Fatalf("owner length = %d, want 64", len(owner))
	}
	counts := make([]int, 4)
	for h, p := range owner {
		if p < 0 || p >= 4 {
			t.Fatalf("host %d assigned to part %d", h, p)
		}
		if h > 0 && p < owner[h-1] {
			t.Fatalf("slab partition not monotone at host %d: %d after %d", h, p, owner[h-1])
		}
		counts[p]++
	}
	for p, c := range counts {
		if c != 16 {
			t.Errorf("part %d owns %d hosts, want 16", p, c)
		}
	}
	// Four slabs of two rows each cut exactly the three row boundaries
	// between slabs: 8 vertical links per boundary.
	if cut := EdgeCut(net, owner); cut != 24 {
		t.Errorf("slab edge cut = %d, want 24", cut)
	}
	// The slab cut must beat a hash assignment on the same grid.
	hash := make([]int, 64)
	for h := range hash {
		hash[h] = int(splitmix64(uint64(h)) % 4)
	}
	if slab, rand := EdgeCut(net, owner), EdgeCut(net, hash); slab >= rand {
		t.Errorf("slab cut %d not below hash cut %d", slab, rand)
	}
}

func TestPartitionHashOnIrregular(t *testing.T) {
	net := Irregular(DefaultIrregular(), workload.NewRNG(1))
	owner := Partition(net, 4)
	again := Partition(net, 4)
	counts := make([]int, 4)
	for h, p := range owner {
		if p < 0 || p >= 4 {
			t.Fatalf("host %d assigned to part %d", h, p)
		}
		if again[h] != p {
			t.Fatalf("partition not deterministic at host %d", h)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c == 0 || c > 3*16 {
			t.Errorf("part %d owns %d of 64 hosts; hash balance off", p, c)
		}
	}
}

func TestPartitionEmptyParts(t *testing.T) {
	net := Mesh(2, 2) // 4 hosts
	owner := Partition(net, 6)
	used := map[int]bool{}
	for h, p := range owner {
		if p < 0 || p >= 6 {
			t.Fatalf("host %d assigned to part %d", h, p)
		}
		used[p] = true
	}
	if len(used) > 4 {
		t.Fatalf("%d parts used for 4 hosts", len(used))
	}
	if len(used) == 6 {
		t.Fatalf("expected at least one empty part with 6 parts over 4 hosts")
	}
}

func TestPartitionPanics(t *testing.T) {
	net := Mesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("Partition(net, 0) did not panic")
		}
	}()
	Partition(net, 0)
}

func TestEdgeCutLengthPanic(t *testing.T) {
	net := Mesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("EdgeCut with short owner slice did not panic")
		}
	}()
	EdgeCut(net, make([]int, 2))
}

func TestGridAccessor(t *testing.T) {
	if a, d, ok := Mesh(4, 3).Grid(); !ok || a != 4 || d != 3 {
		t.Errorf("Mesh(4,3).Grid() = %d,%d,%v", a, d, ok)
	}
	if a, d, ok := Cube(3, 2).Grid(); !ok || a != 3 || d != 2 {
		t.Errorf("Cube(3,2).Grid() = %d,%d,%v", a, d, ok)
	}
	irr := Irregular(DefaultIrregular(), workload.NewRNG(1))
	if _, _, ok := irr.Grid(); ok {
		t.Errorf("irregular network reports grid geometry")
	}
}
