package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, runtime.NumCPU()} {
		n := 1000
		hits := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want exactly once", workers, i, h)
			}
		}
	}
}

func TestForZeroN(t *testing.T) {
	For(0, 4, func(i int) { t.Fatalf("fn called for n=0 (i=%d)", i) })
}

func TestForIndexOrderFoldIsDeterministic(t *testing.T) {
	// The contract callers rely on: write into i-indexed storage, fold in
	// index order, and the result is independent of the worker count.
	n := 257
	fold := func(workers int) float64 {
		vals := make([]float64, n)
		For(n, workers, func(i int) { vals[i] = 1.0 / float64(i+1) })
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum
	}
	serial := fold(1)
	for _, w := range []int{2, 3, runtime.NumCPU()} {
		if got := fold(w); got != serial {
			t.Fatalf("workers=%d folded to %v, serial folded to %v", w, got, serial)
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(100, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}
