package check

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/live/link"
	"repro/internal/message"
)

// TestNetInvariant100Cases is the acceptance gate for the UDP transport:
// 100 seeded harness instances, each executed twice — once on in-process
// channel links, once over a real loopback UDP fabric — and compared
// structurally (delivery order, parent edges, send/receive counts,
// byte-exact payloads). CI runs this under -race, so the socket pump,
// per-incarnation deliverers and credit plane are concurrency-validated
// at the same time.
func TestNetInvariant100Cases(t *testing.T) {
	if !loopbackUDPAvailable() {
		t.Skip("loopback UDP unavailable in this environment")
	}
	inv, ok := InvariantByID("net-matches-live")
	if !ok {
		t.Fatal("net-matches-live invariant not registered")
	}
	const cases = 100
	failed := 0
	for c := 0; c < cases; c++ {
		inst := Generate(7, c)
		w, err := safeBuild(inst)
		if err != nil {
			t.Fatalf("case %d: build: %v", c, err)
		}
		if err := safeCheck(inv, w); err != nil {
			failed++
			t.Errorf("case %d (replay: mcastcheck -only net-matches-live -seed 7 -case %d): %v", c, c, err)
			if failed >= 5 {
				t.Fatal("stopping after 5 differential failures")
			}
		}
	}
}

// TestNetChaosSweep drives the full reliability stack over real sockets:
// 100 fixed-seed instances where the chaos decorator (1% drop plus
// jitter) wraps the UDP transport, so retransmissions, ACKs and epoch
// fencing all cross the wire as datagrams. Every destination must end
// the run holding the byte-exact payload — the UDP rung of the
// differential ladder under loss, not just lossless loopback.
func TestNetChaosSweep(t *testing.T) {
	if !loopbackUDPAvailable() {
		t.Skip("loopback UDP unavailable in this environment")
	}
	const cases = 100
	failed := 0
	for c := 0; c < cases; c++ {
		inst := Generate(11, c)
		inst.Crashes = nil // the chaos arm here is wire loss, not membership
		w, err := safeBuild(inst)
		if err != nil {
			t.Fatalf("case %d: build: %v", c, err)
		}
		if err := netChaosCase(w, c); err != nil {
			failed++
			t.Errorf("case %d (seed 11): %v", c, err)
			if failed >= 5 {
				t.Fatal("stopping after 5 chaos-sweep failures")
			}
		}
	}
}

// netChaosCase runs one instance's plan on RunReliable over a fresh
// loopback UDP fabric with a seeded 1%-drop fault plan and asserts
// byte-exact delivery everywhere.
func netChaosCase(w *world, c int) error {
	payload := w.inst.livePayload()
	pkts, err := message.Packetize(1, w.plan.Spec.Source, payload, livePacketBytes)
	if err != nil {
		return err
	}
	nw, err := link.NewLoopbackUDP(w.plan.Tree.Nodes(), link.UDPConfig{Session: w.inst.netSession() + uint64(c)})
	if err != nil {
		return err
	}
	defer nw.Close()
	cfg := w.inst.liveReliableConfig()
	cfg.Live.Network = nw
	cfg.Crashes = nil
	cfg.Faults = link.Faults{
		Seed:      w.inst.FaultSeed ^ 0x0001_f00d,
		DropRate:  0.01,
		MaxJitter: 50 * time.Microsecond,
	}
	res, err := live.RunReliable(live.Session{Tree: w.plan.Tree, Packets: pkts, MsgID: 1}, cfg)
	if err != nil {
		return err
	}
	for _, d := range w.inst.Dests {
		rec := res.Hosts[d]
		if rec == nil || !bytes.Equal(rec.Data, payload) {
			got := -1
			if rec != nil {
				got = len(rec.Data)
			}
			return fmt.Errorf("host %d reassembled %d bytes over lossy UDP, want %d (decorator dropped %d datagrams)",
				d, got, len(payload), res.Faults.Dropped)
		}
	}
	return nil
}
