package netiface

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/analytic"
	"repro/internal/stepsim"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFCFSMatchesPaperResidency(t *testing.T) {
	// Section 3.3.2 best case (zero inter-arrival delay): every packet's
	// residency from first coprocessor read to last copy injected is
	// ((c-1)m + 1) * t_sq under FCFS — identical for every packet j, as
	// the paper's derivation implies.
	tsq := 1.0
	for c := 2; c <= 8; c++ {
		for m := 1; m <= 16; m++ {
			tr := Forward(stepsim.FCFS, c, ZeroDelayArrivals(m, 0), tsq)
			want := float64(analytic.BufferResidencyFCFS(c, m)) * tsq
			for j, r := range tr.ServiceResidency {
				if !approx(r, want) {
					t.Fatalf("c=%d m=%d packet %d: service residency %f, want %f", c, m, j, r, want)
				}
			}
			// Memory residency (from arrival) is at least as long.
			for j := range tr.Residency {
				if tr.Residency[j] < tr.ServiceResidency[j]-1e-9 {
					t.Fatalf("c=%d m=%d packet %d: memory residency below service residency", c, m, j)
				}
			}
		}
	}
}

func TestFPFSMatchesPaperResidency(t *testing.T) {
	// The paper's T_p = c*t_sq counts from when the NI reads the packet
	// until its last copy is injected; under FPFS the c copies are served
	// back-to-back, so the service residency is exactly c*t_sq for every
	// packet, whatever the arrival pattern.
	tsq := 1.0
	for c := 1; c <= 8; c++ {
		for m := 1; m <= 16; m++ {
			for _, delta := range []float64{0, 1, float64(c) * tsq, 7} {
				tr := Forward(stepsim.FPFS, c, ZeroDelayArrivals(m, delta), tsq)
				want := float64(analytic.BufferResidencyFPFS(c)) * tsq
				for j, r := range tr.ServiceResidency {
					if !approx(r, want) {
						t.Fatalf("c=%d m=%d delta=%f packet %d: service residency %f, want %f",
							c, m, delta, j, r, want)
					}
				}
			}
			// With pipeline arrivals (inter-arrival >= c*tsq) the queue
			// drains in time: memory residency equals service residency
			// and at most one packet is ever buffered.
			tr := Forward(stepsim.FPFS, c, PipelineArrivals(m, c, tsq), tsq)
			for j, r := range tr.Residency {
				if !approx(r, float64(c)*tsq) {
					t.Fatalf("c=%d m=%d packet %d: pipeline residency %f, want %f", c, m, j, r, float64(c)*tsq)
				}
			}
			if tr.PeakBuffered != 1 {
				t.Fatalf("c=%d m=%d: peak %d, want 1 (drain keeps up)", c, m, tr.PeakBuffered)
			}
		}
	}
}

func TestFCFSPeakHoldsWholeMessage(t *testing.T) {
	// Under FCFS with fast arrivals the NI must hold all m packets at once.
	for _, m := range []int{2, 8, 32} {
		tr := Forward(stepsim.FCFS, 4, ZeroDelayArrivals(m, 0), 1.0)
		if tr.PeakBuffered != m {
			t.Errorf("m=%d: FCFS peak %d, want %d", m, tr.PeakBuffered, m)
		}
	}
}

func TestFPFSPeakBounded(t *testing.T) {
	// FPFS with pipeline arrivals from a parent with fanout >= own fanout
	// keeps at most c+1 packets resident even for long messages.
	for c := 1; c <= 6; c++ {
		tr := Forward(stepsim.FPFS, c, PipelineArrivals(64, c, 1.0), 1.0)
		if tr.PeakBuffered > c+1 {
			t.Errorf("c=%d: FPFS peak %d > c+1", c, tr.PeakBuffered)
		}
	}
}

func TestMakespanEqualCopies(t *testing.T) {
	// Both disciplines inject exactly c*m copies; with all packets present
	// at time 0 the makespans agree.
	for c := 1; c <= 5; c++ {
		for m := 1; m <= 9; m++ {
			a := Forward(stepsim.FPFS, c, ZeroDelayArrivals(m, 0), 2.0)
			b := Forward(stepsim.FCFS, c, ZeroDelayArrivals(m, 0), 2.0)
			want := float64(c*m) * 2.0
			if !approx(a.Makespan, want) || !approx(b.Makespan, want) {
				t.Fatalf("c=%d m=%d: makespans %f/%f, want %f", c, m, a.Makespan, b.Makespan, want)
			}
		}
	}
}

func TestDelayedArrivalsHurtFCFSMore(t *testing.T) {
	// The paper: "if there is delay between incoming packets, each packet
	// requires longer buffering in the FCFS implementation". FPFS
	// residency is unaffected once the drain keeps up.
	c, m, tsq := 3, 8, 1.0
	slow := ZeroDelayArrivals(m, 5.0) // inter-arrival 5 > c*tsq
	fc := Forward(stepsim.FCFS, c, slow, tsq)
	fp := Forward(stepsim.FPFS, c, slow, tsq)
	if fp.MaxResidency() != float64(c)*tsq {
		t.Errorf("FPFS residency %f, want %f", fp.MaxResidency(), float64(c)*tsq)
	}
	// FCFS: the first packet waits for the whole (delayed) message before
	// later children are served — residency grows with the arrival span.
	if fc.MaxResidency() <= fp.MaxResidency()*2 {
		t.Errorf("FCFS residency %f not much worse than FPFS %f under delay",
			fc.MaxResidency(), fp.MaxResidency())
	}
}

func TestConventionalBehavesLikeFCFSQueue(t *testing.T) {
	a := Forward(stepsim.Conventional, 3, ZeroDelayArrivals(5, 0), 1.0)
	b := Forward(stepsim.FCFS, 3, ZeroDelayArrivals(5, 0), 1.0)
	for j := range a.Residency {
		if !approx(a.Residency[j], b.Residency[j]) {
			t.Fatalf("packet %d: conventional %f vs FCFS %f", j, a.Residency[j], b.Residency[j])
		}
	}
}

func TestTraceFields(t *testing.T) {
	tr := Forward(stepsim.FPFS, 2, ZeroDelayArrivals(3, 0), 1.0)
	if tr.Discipline != stepsim.FPFS || tr.Children != 2 || tr.Packets != 3 {
		t.Error("trace metadata wrong")
	}
	if len(tr.Arrive) != 3 || len(tr.Freed) != 3 || len(tr.Residency) != 3 {
		t.Error("trace slices wrong length")
	}
	// Freed must be non-decreasing in packet order under both disciplines.
	for j := 1; j < 3; j++ {
		if tr.Freed[j] < tr.Freed[j-1] {
			t.Error("Freed not monotone")
		}
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Forward(stepsim.FPFS, 0, []float64{0}, 1) },
		func() { Forward(stepsim.FPFS, 2, nil, 1) },
		func() { Forward(stepsim.FPFS, 2, []float64{0}, 0) },
		func() { Forward(stepsim.FPFS, 2, []float64{1, 0}, 1) },
		func() { Forward(stepsim.Discipline(9), 2, []float64{0}, 1) },
		func() { ZeroDelayArrivals(0, 1) },
		func() { ZeroDelayArrivals(2, -1) },
		func() { PipelineArrivals(2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuickFPFSNeverWorseResidency(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(1 + r.Intn(8))   // c
			vals[1] = reflect.ValueOf(1 + r.Intn(24))  // m
			vals[2] = reflect.ValueOf(r.Float64() * 4) // inter-arrival delta
		},
	}
	if err := quick.Check(func(c, m int, delta float64) bool {
		arr := ZeroDelayArrivals(m, delta)
		fp := Forward(stepsim.FPFS, c, arr, 1.0)
		fc := Forward(stepsim.FCFS, c, arr, 1.0)
		return fp.MaxResidency() <= fc.MaxResidency()+1e-9 &&
			fp.PeakBuffered <= fc.PeakBuffered
	}, cfg); err != nil {
		t.Error(err)
	}
}
