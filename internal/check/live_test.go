package check

import (
	"testing"
)

// TestLiveInvariant250Cases is the differential acceptance gate for the
// live runtime: 250 seeded harness instances, each executed on real
// goroutine NIs and compared structurally against the FPFS step schedule
// (delivery order, parent edges, send/receive counts). CI runs the check
// package under -race, so this doubles as a concurrency validator.
func TestLiveInvariant250Cases(t *testing.T) {
	inv, ok := InvariantByID("live-matches-sim")
	if !ok {
		t.Fatal("live-matches-sim invariant not registered")
	}
	const cases = 250
	failed := 0
	for c := 0; c < cases; c++ {
		inst := Generate(3, c)
		w, err := safeBuild(inst)
		if err != nil {
			t.Fatalf("case %d: build: %v", c, err)
		}
		if err := safeCheck(inv, w); err != nil {
			failed++
			t.Errorf("case %d (replay: mcastcheck -seed 3 -case %d): %v", c, c, err)
			if failed >= 5 {
				t.Fatal("stopping after 5 differential failures")
			}
		}
	}
}

// TestLiveInvariantConfigSpread pins the deterministic config derivation:
// the sweep must exercise both bounded and unbounded buffers.
func TestLiveInvariantConfigSpread(t *testing.T) {
	bounded, unbounded := 0, 0
	for c := 0; c < 64; c++ {
		cfg := Generate(3, c).liveConfig()
		if cfg.BufferPackets == 0 {
			unbounded++
		} else {
			bounded++
		}
	}
	if bounded == 0 || unbounded == 0 {
		t.Fatalf("config derivation is degenerate: %d bounded / %d unbounded", bounded, unbounded)
	}
}
