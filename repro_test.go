package repro_test

import (
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	sys := repro.NewIrregularSystem(repro.DefaultIrregularConfig(), 1)
	spec := repro.Spec{Source: 0, Dests: []int{5, 9, 23, 44, 61, 17, 38}, Packets: 8, Policy: repro.OptimalTree}
	plan := sys.Plan(spec)
	if plan.K < 1 {
		t.Fatalf("plan k = %d", plan.K)
	}
	res := sys.Simulate(plan, repro.DefaultParams(), repro.FPFS)
	if res.Latency <= 0 || len(res.HostDone) != 7 {
		t.Fatalf("simulation incomplete: %+v", res)
	}
}

func TestFacadeCubeSystem(t *testing.T) {
	sys := repro.NewCubeSystem(2, 4)
	spec := repro.Spec{Source: 3, Dests: []int{0, 7, 12, 15}, Packets: 2, Policy: repro.BinomialTree}
	res := sys.Simulate(sys.Plan(spec), repro.DefaultParams(), repro.FPFS)
	if res.Latency <= 0 {
		t.Fatal("cube simulation failed")
	}
}

func TestFacadeOptimalK(t *testing.T) {
	k, steps := repro.OptimalK(16, 1)
	if k != 4 || steps != 4 {
		t.Errorf("OptimalK(16,1) = (%d,%d), want (4,4)", k, steps)
	}
	if repro.Coverage(5, 3) != 28 {
		t.Errorf("Coverage(5,3) = %d, want 28", repro.Coverage(5, 3))
	}
}

func TestFacadeModelLatency(t *testing.T) {
	c := repro.Costs{THostSend: 12.5, THostRecv: 12.5, TStep: 5.4}
	lat, k := repro.ModelLatency(4, 3, c)
	// Optimal for n=4, m=3 is the linear tree: 5 steps (paper Fig. 5).
	if k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
	if want := 12.5 + 5*5.4 + 12.5; lat != want {
		t.Errorf("latency = %f, want %f", lat, want)
	}
}

func TestFacadeDisciplinesDistinct(t *testing.T) {
	if repro.FPFS == repro.FCFS || repro.FCFS == repro.Conventional {
		t.Error("discipline constants collide")
	}
	if repro.OptimalTree == repro.BinomialTree {
		t.Error("tree policy constants collide")
	}
}

func TestFacadeCollectives(t *testing.T) {
	sys := repro.NewIrregularSystem(repro.DefaultIrregularConfig(), 3)
	p := repro.DefaultParams()
	spec := repro.Spec{Source: 0, Dests: []int{5, 9, 23, 44, 61}, Packets: 4, Policy: repro.OptimalTree}

	bc := repro.Broadcast(sys, 0, 2, repro.OptimalTree, p)
	if bc.Latency <= 0 || bc.Sends != 63*2 {
		t.Errorf("Broadcast: %+v", bc)
	}
	sc := repro.Scatter(sys, spec, p)
	ga := repro.Gather(sys, spec, p)
	if sc.Latency <= 0 || ga.Latency <= 0 || sc.Sends != ga.Sends {
		t.Errorf("Scatter/Gather: %v / %v", sc, ga)
	}
	rd := repro.Reduce(sys, spec, p)
	if rd.Latency <= 0 || rd.Sends != 5*4 {
		t.Errorf("Reduce: %+v", rd)
	}
	ba := repro.Barrier(sys, spec, p)
	if ba.Latency <= rd.Latency/4 {
		t.Errorf("Barrier latency %f implausible", ba.Latency)
	}
}

func TestFacadeMeshSystem(t *testing.T) {
	sys := repro.NewMeshSystem(3, 2)
	spec := repro.Spec{Source: 4, Dests: []int{0, 2, 6, 8}, Packets: 3, Policy: repro.OptimalTree}
	res := sys.Simulate(sys.Plan(spec), repro.DefaultParams(), repro.FPFS)
	if res.Latency <= 0 || len(res.HostDone) != 4 {
		t.Fatalf("mesh simulation incomplete: %+v", res)
	}
}

func TestFacadeConcurrent(t *testing.T) {
	sys := repro.NewIrregularSystem(repro.DefaultIrregularConfig(), 5)
	planA := sys.Plan(repro.Spec{Source: 0, Dests: []int{9, 18}, Packets: 2, Policy: repro.OptimalTree})
	planB := sys.Plan(repro.Spec{Source: 1, Dests: []int{27, 36}, Packets: 2, Policy: repro.OptimalTree})
	res := repro.Concurrent(sys, []repro.Session{
		{Tree: planA.Tree, Packets: 2},
		{Tree: planB.Tree, Packets: 2},
	}, repro.DefaultParams(), repro.FPFS)
	if len(res.Sessions) != 2 || res.Sends != 8 {
		t.Fatalf("concurrent facade: %+v", res)
	}
}
