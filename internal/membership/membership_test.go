package membership

import (
	"reflect"
	"testing"
)

func det(t *testing.T, members []int) *Detector {
	t.Helper()
	d, err := New(DefaultConfig(), members, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{HeartbeatEvery: 5, SuspectAfter: 4, ConfirmAfter: 10},
		{HeartbeatEvery: 5, SuspectAfter: 16, ConfirmAfter: 0},
		{HeartbeatEvery: 5, SuspectAfter: 16, ConfirmAfter: 12, JitterFrac: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if _, err := New(DefaultConfig(), nil, 0); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := New(DefaultConfig(), []int{3, 3}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
}

// TestHealthyGroupNeverChangesView: members that keep heartbeating stay in
// epoch 1 forever.
func TestHealthyGroupNeverChangesView(t *testing.T) {
	d := det(t, []int{0, 1, 2, 3})
	for beat := 1; beat <= 40; beat++ {
		at := float64(beat) * 5
		for h := 0; h < 4; h++ {
			if evs := d.Heartbeat(h, at); len(evs) != 0 {
				t.Fatalf("healthy heartbeat produced events %v", evs)
			}
		}
	}
	v := d.View()
	if v.Epoch != 1 || !reflect.DeepEqual(v.Members, []int{0, 1, 2, 3}) {
		t.Errorf("healthy view drifted: %+v", v)
	}
}

// TestSilenceSuspectsThenConfirms: a silent member is suspected after
// SuspectAfter and confirmed crashed ConfirmAfter later, advancing the
// epoch exactly once.
func TestSilenceSuspectsThenConfirms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0 // exact deadlines
	d, err := New(cfg, []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hosts 0 and 2 heartbeat; host 1 is silent from t=0.
	for beat := 1; beat <= 10; beat++ {
		at := float64(beat) * cfg.HeartbeatEvery
		d.Heartbeat(0, at)
		evs := d.Heartbeat(2, at)
		for _, e := range evs {
			if e.Host != 1 {
				t.Fatalf("unexpected event for host %d: %+v", e.Host, e)
			}
			switch e.Kind {
			case Suspected:
				if e.At != cfg.SuspectAfter {
					t.Errorf("suspected at %f, want %f", e.At, cfg.SuspectAfter)
				}
			case Confirmed:
				if want := cfg.SuspectAfter + cfg.ConfirmAfter; e.At != want {
					t.Errorf("confirmed at %f, want %f", e.At, want)
				}
				if e.Epoch != 2 {
					t.Errorf("confirmation epoch %d, want 2", e.Epoch)
				}
			}
		}
	}
	v := d.View()
	if v.Epoch != 2 || !reflect.DeepEqual(v.Members, []int{0, 2}) {
		t.Errorf("post-crash view %+v, want epoch 2 members [0 2]", v)
	}
	if d.Phase(1) != Crashed {
		t.Errorf("host 1 phase %v, want crashed", d.Phase(1))
	}
}

// TestSuspectReinstatedWithoutViewChange: a late heartbeat clears
// suspicion without touching the epoch.
func TestSuspectReinstatedWithoutViewChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	d, _ := New(cfg, []int{0, 1}, 0)
	evs := d.Advance(cfg.SuspectAfter + 1)
	if len(evs) != 2 || evs[0].Kind != Suspected || evs[1].Kind != Suspected {
		t.Fatalf("expected two suspicions, got %v", evs)
	}
	if evs := d.Heartbeat(1, cfg.SuspectAfter+2); len(evs) != 0 {
		t.Fatalf("reinstating heartbeat produced events %v", evs)
	}
	if d.Phase(1) != Alive || d.Epoch() != 1 {
		t.Errorf("phase=%v epoch=%d after reinstatement", d.Phase(1), d.Epoch())
	}
}

// TestRejoinAdvancesEpoch: a heartbeat from a confirmed-crashed member
// re-admits it in a fresh epoch.
func TestRejoinAdvancesEpoch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	d, _ := New(cfg, []int{0, 1}, 0)
	for beat := 1; beat <= 10; beat++ {
		d.Heartbeat(0, float64(beat)*5) // drives Advance past host 1's confirmation
	}
	if d.Phase(1) != Crashed || d.Epoch() != 2 {
		t.Fatalf("setup failed: phase=%v epoch=%d", d.Phase(1), d.Epoch())
	}
	evs := d.Heartbeat(1, 60)
	if len(evs) != 1 || evs[0].Kind != Rejoined || evs[0].Epoch != 3 {
		t.Fatalf("rejoin events %v, want one Rejoined at epoch 3", evs)
	}
	v := d.View()
	if v.Epoch != 3 || !reflect.DeepEqual(v.Members, []int{0, 1}) {
		t.Errorf("post-rejoin view %+v", v)
	}
}

// TestJitterDesynchronizesConfirmations: two members silent from the same
// instant confirm at distinct, seeded times; the order is stable across
// runs.
func TestJitterDesynchronizesConfirmations(t *testing.T) {
	run := func() []Event {
		d := det(t, []int{0, 1, 2})
		var evs []Event
		for beat := 1; beat <= 20; beat++ {
			at := float64(beat) * 5
			evs = append(evs, d.Heartbeat(0, at)...)
		}
		return evs
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("detector events differ between identical runs")
	}
	var confirms []Event
	for _, e := range a {
		if e.Kind == Confirmed {
			confirms = append(confirms, e)
		}
	}
	if len(confirms) != 2 {
		t.Fatalf("got %d confirmations, want 2: %v", len(confirms), a)
	}
	if confirms[0].At == confirms[1].At {
		t.Errorf("jitter failed to separate confirmation times: both at %f", confirms[0].At)
	}
	if confirms[0].Epoch != 2 || confirms[1].Epoch != 3 {
		t.Errorf("confirmation epochs %d, %d — want 2 then 3", confirms[0].Epoch, confirms[1].Epoch)
	}
}

// TestNextDeadline tracks the earliest pending timeout.
func TestNextDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	d, _ := New(cfg, []int{4, 7}, 10)
	dl, ok := d.NextDeadline()
	if !ok || dl != 10+cfg.SuspectAfter {
		t.Errorf("deadline %f ok=%v, want %f", dl, ok, 10+cfg.SuspectAfter)
	}
	d.Heartbeat(4, 20)
	dl, ok = d.NextDeadline()
	if !ok || dl != 10+cfg.SuspectAfter { // host 7 still pending
		t.Errorf("deadline %f ok=%v, want host 7's %f", dl, ok, 10+cfg.SuspectAfter)
	}
	d.Advance(100) // both eventually confirm (7) or suspect->confirm (4)
	if _, ok := d.NextDeadline(); ok {
		t.Error("deadline reported with every member crashed")
	}
}

// TestWitnessSavesPastDeadline: unlike Heartbeat, a Witness observation is
// not outweighed by silence that already crossed the confirmation
// deadline — the driver's first-hand knowledge wins.
func TestWitnessSavesPastDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	d, _ := New(cfg, []int{0, 1}, 0)
	deep := cfg.SuspectAfter + cfg.ConfirmAfter + 10 // past both deadlines

	// Witness first: the member must survive the subsequent judgment.
	if evs := d.Witness(0, deep); len(evs) != 0 {
		t.Fatalf("witness of an alive member produced events %v", evs)
	}
	evs := d.Advance(deep)
	for _, e := range evs {
		if e.Host == 0 {
			t.Fatalf("witnessed member judged anyway: %v", e)
		}
	}
	if d.Phase(0) != Alive {
		t.Errorf("witnessed member phase %v, want alive", d.Phase(0))
	}
	// Heartbeat in the same position would NOT have saved host 1.
	if d.Phase(1) != Crashed {
		t.Errorf("silent member phase %v, want crashed", d.Phase(1))
	}

	// Witness of a crashed member re-admits it like a rejoin heartbeat.
	epoch := d.Epoch()
	revs := d.Witness(1, deep+1)
	if len(revs) != 1 || revs[0].Kind != Rejoined || revs[0].Epoch != epoch+1 {
		t.Fatalf("witness of a crashed member produced %v, want one Rejoined at epoch %d", revs, epoch+1)
	}
	if d.Phase(1) != Alive {
		t.Errorf("rejoined member phase %v, want alive", d.Phase(1))
	}

	// A stale witness must not regress lastHeard.
	d.Witness(0, deep-100)
	if evs := d.Advance(deep + 2); len(evs) != 0 {
		t.Errorf("stale witness regressed liveness: %v", evs)
	}

	// Unknown hosts are ignored.
	if evs := d.Witness(99, deep); evs != nil {
		t.Errorf("unknown host witness produced %v", evs)
	}
}
