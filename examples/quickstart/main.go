// Quickstart: plan and simulate one optimal multicast on the paper's
// irregular 64-host testbed, and compare it with the binomial baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A random-but-reproducible machine: 64 hosts on 16 eight-port
	// switches, up*/down* routing, CCO node ordering.
	sys := repro.NewIrregularSystem(repro.DefaultIrregularConfig(), 42)
	fmt.Printf("machine: %s\n\n", sys.Net.Summary())

	// Multicast a 512-byte message (8 x 64-byte packets) from host 0 to
	// ten destinations.
	spec := repro.Spec{
		Source:  0,
		Dests:   []int{3, 7, 12, 19, 25, 33, 40, 48, 55, 62},
		Packets: 8,
		Policy:  repro.OptimalTree,
	}

	plan := sys.Plan(spec)
	fmt.Printf("optimal plan: k=%d fanout bound, tree depth %d, %d model steps\n",
		plan.K, plan.Tree.Depth(), plan.ModelSteps)

	params := repro.DefaultParams()
	opt := sys.Simulate(plan, params, repro.FPFS)
	fmt.Printf("k-binomial latency: %8.1f us\n", opt.Latency)

	// The conventional wisdom baseline: a binomial tree.
	spec.Policy = repro.BinomialTree
	bin := sys.Simulate(sys.Plan(spec), params, repro.FPFS)
	fmt.Printf("binomial latency:   %8.1f us\n", bin.Latency)
	fmt.Printf("speedup:            %8.2fx\n\n", bin.Latency/opt.Latency)

	// The closed-form model agrees on the winner.
	costs := repro.Costs{
		THostSend: params.THostSend,
		THostRecv: params.THostRecv,
		TStep:     params.StepTime(2),
	}
	model, k := repro.ModelLatency(len(spec.Dests)+1, spec.Packets, costs)
	fmt.Printf("model: optimal k=%d, predicted latency %.1f us\n", k, model)
}
